#include "core/hybridtier_policy.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "policies/scan_util.h"

namespace hybridtier {

namespace {
constexpr uint64_t kFreqBase = 1ULL << 44;     // Frequency CBF lines.
constexpr uint64_t kMomBase = 1ULL << 45;      // Momentum CBF lines.
constexpr uint64_t kHistBase = 1ULL << 46;     // Histogram lines.
constexpr uint64_t kPagemapBase = 1ULL << 47;  // Demotion scan pagemap.
}  // namespace

HybridTierPolicy::HybridTierPolicy(const HybridTierConfig& config)
    : config_(config) {
  HT_ASSERT(config.momentum_threshold >= 1,
            "momentum threshold must be >= 1");
  HT_ASSERT(config.demote_target_frac >= config.demote_trigger_frac,
            "demotion target watermark below trigger watermark");
}

const char* HybridTierPolicy::name() const {
  if (!config_.use_momentum) return "HybridTier-onlyFreq";
  switch (config_.estimator) {
    case EstimatorKind::kBlockedCbf:
      return "HybridTier";
    case EstimatorKind::kStandardCbf:
      return "HybridTier-CBF";
    case EstimatorKind::kExact:
      return "HybridTier-exact";
  }
  return "HybridTier";
}

void HybridTierPolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);
  const uint64_t fast_units = std::max<uint64_t>(
      context.fast_capacity_units, 16);
  // Huge pages accumulate 512x the accesses, so counters widen to 16 bit
  // (paper §4.4); regular pages use 4-bit counters capped at 15 (§3.2).
  const uint32_t counter_bits =
      context.mode == PageMode::kHuge ? 16 : 4;

  CbfSizing freq_sizing = FrequencyCbfSizing(
      fast_units, counter_bits, config_.cbf_hashes, config_.cbf_error_rate);
  if (config_.cbf_counters_override != 0) {
    freq_sizing.num_counters = config_.cbf_counters_override;
  }
  TrackerConfig freq_config;
  freq_config.kind = config_.estimator;
  freq_config.sizing = freq_sizing;
  freq_config.exact_units = context.footprint_units;
  freq_config.cooling_period_samples = config_.freq_cooling_samples;
  freq_config.metadata_base = kFreqBase;
  freq_config.seed = config_.seed;
  freq_ = std::make_unique<AccessTracker>(freq_config);

  if (config_.use_momentum) {
    CbfSizing mom_sizing = MomentumCbfSizing(
        fast_units, counter_bits, config_.cbf_hashes,
        config_.cbf_error_rate);
    TrackerConfig mom_config;
    mom_config.kind = config_.estimator;
    mom_config.sizing = mom_sizing;
    mom_config.exact_units = context.footprint_units;
    mom_config.cooling_period_samples = config_.momentum_cooling_samples;
    mom_config.metadata_base = kMomBase;
    mom_config.seed = config_.seed ^ 0x5eedULL;
    momentum_ = std::make_unique<AccessTracker>(mom_config);
  }

  // The histogram needs one bucket per distinct counter value that can
  // matter for thresholding; cap at 255 so huge-page mode (16-bit
  // counters) does not inflate it.
  histogram_ = std::make_unique<Histogram>(
      std::min<uint32_t>(freq_->max_count(), 255));
  freq_threshold_ = 1;

  // Dense second-chance state: the footprint is known here, so the
  // marks live in a flat PageId-indexed array instead of a hash map.
  second_chance_.assign(context.footprint_units, SecondChanceMark{});
  second_chance_pending_ = 0;

  if (context.trace != nullptr) {
    cooling_track_ = context.trace->Track("policy/HybridTier");
  }
}

void HybridTierPolicy::UpdateThreshold() {
  freq_threshold_ = std::max<uint32_t>(
      1, histogram_->ThresholdForBudget(context().fast_capacity_units));
}

void HybridTierPolicy::FlushPromotions(TimeNs now) {
  samples_at_last_flush_ = samples_seen_;
  UpdateThreshold();
  if (pending_promotions_.empty()) return;
  // A hot page is sampled many times per batch; migrate it once.
  std::sort(pending_promotions_.begin(), pending_promotions_.end());
  pending_promotions_.erase(
      std::unique(pending_promotions_.begin(), pending_promotions_.end()),
      pending_promotions_.end());
  // Demand demotion: make room for the batch first, as the runtime's
  // demotion path does when the fast tier is under allocation pressure.
  const uint64_t free_pages = memory().FreePages(Tier::kFast);
  if (free_pages < pending_promotions_.size()) {
    DemoteColdPages(pending_promotions_.size() - free_pages, now,
                    MigrationReason::kCapacityDemand);
  }
  // One batched move_pages syscall for the whole batch (paper §4.3).
  migration().Promote(pending_promotions_, now,
                      MigrationReason::kHotnessRank);
  pending_promotions_.clear();
}

void HybridTierPolicy::OnSample(const SampleRecord& sample) {
  ++samples_seen_;
  const PageId unit = sample.page;

  // Frequency update (+ histogram bookkeeping on actual increments).
  // The pre-update estimate comes out of the same filter walk as the
  // increment — one CBF lookup per sample, not two.
  uint32_t old_freq = 0;
  const uint32_t new_freq = freq_->RecordAccess(unit, sink(), &old_freq);
  if (freq_->cooled_on_last_record()) {
    histogram_->CoolByHalving();
    if (DecisionAudit* audit = migration().audit()) audit->RecordCooling();
    if (context().trace != nullptr) {
      context().trace->Instant(
          cooling_track_, "cooling", sample.time_ns,
          {{"coolings", static_cast<double>(freq_->coolings())}});
    }
    // The halved histogram carries this unit at old_freq/2 — the
    // increment that triggered the cooling never reached it. Re-seat the
    // unit at its post-cooling estimate so the increment is not lost.
    // (A unit that was tracked at all stays tracked through halving,
    // even in bucket 0, so the Remove guard is on old_freq itself.)
    if (new_freq > old_freq / 2) {
      if (old_freq > 0) histogram_->Remove(old_freq / 2);
      histogram_->Add(new_freq);
      sink().Touch(kHistBase + (new_freq / 8) * kCacheLineSize);
    }
  } else if (new_freq > old_freq) {
    if (old_freq > 0) histogram_->Remove(old_freq);
    histogram_->Add(new_freq);
    sink().Touch(kHistBase + (new_freq / 8) * kCacheLineSize);
  }

  // Momentum update.
  uint32_t new_momentum = 0;
  if (momentum_) new_momentum = momentum_->RecordAccess(unit, sink());

  // Promotion rule: high frequency OR high momentum (paper Table 1).
  if (sample.tier == Tier::kSlow) {
    const bool freq_hot = new_freq >= freq_threshold_;
    const bool momentum_hot =
        momentum_ && new_momentum >= config_.momentum_threshold;
    if (freq_hot || momentum_hot) {
      pending_promotions_.push_back(unit);
      if (!freq_hot && momentum_hot) ++momentum_promotions_;
    }
  }

  // A promoted-and-rehot page should not be demoted by a stale mark.
  // The sample that triggers cooling also counts: the unit was
  // incremented before the halving, even though the returned estimate
  // is now below old_freq.
  if (second_chance_pending_ != 0 &&
      (new_freq > old_freq || freq_->cooled_on_last_record())) {
    ClearMark(unit);
  }

  if (samples_seen_ - samples_at_last_flush_ >=
      config_.promo_batch_samples) {
    FlushPromotions(sample.time_ns);
  }
}

void HybridTierPolicy::WatermarkDemotion(TimeNs now) {
  TieredMemory& mem = memory();
  const uint64_t capacity = mem.Capacity(Tier::kFast);
  if (capacity == 0) return;
  const double free_frac =
      static_cast<double>(mem.FreePages(Tier::kFast)) /
      static_cast<double>(capacity);
  if (free_frac >= config_.demote_trigger_frac) return;

  const uint64_t target_free = static_cast<uint64_t>(
      config_.demote_target_frac * static_cast<double>(capacity));
  const uint64_t needed = target_free > mem.FreePages(Tier::kFast)
                              ? target_free - mem.FreePages(Tier::kFast)
                              : 0;
  if (needed == 0) return;
  DemoteColdPages(needed, now, MigrationReason::kWatermark);
}

uint64_t HybridTierPolicy::DemoteColdPages(uint64_t needed, TimeNs now,
                                           MigrationReason reason) {
  TieredMemory& mem = memory();
  std::vector<PageId> victims;
  const uint64_t footprint = context().footprint_units;
  const uint32_t demote_below = std::max<uint32_t>(
      1, freq_threshold_ / std::max<uint32_t>(
                               1, config_.demote_hysteresis_divisor));

  // One classification pass of the Table-1 demotion rules. In the
  // strict phase only clearly-cold pages (hysteresis: freq below
  // threshold/divisor) are victims, so warm residents do not swap with
  // equally-warm candidates after every cooling. If that starves the
  // promotion path, a relaxed phase also takes sub-threshold pages.
  auto classify = [&](PageId unit, bool relaxed) {
    sink().Touch(kPagemapBase + (unit / 8) * kCacheLineSize);
    if (victims.size() >= needed) return;

    const uint32_t freq = freq_->GetTracked(unit, sink());
    const uint32_t momentum =
        momentum_ ? momentum_->GetTracked(unit, sink()) : 0;
    const bool freq_hot = freq >= freq_threshold_;
    const bool momentum_hot =
        momentum_ && momentum >= config_.momentum_threshold;

    if (momentum_hot) {
      // High momentum: recently promoted or actively heating — keep.
      ClearMark(unit);
      return;
    }
    if (!freq_hot) {
      // Low/low: demote (Table 1 bottom-right).
      if (freq < demote_below || relaxed) {
        ClearMark(unit);
        victims.push_back(unit);
      }
      return;
    }
    // High frequency, low momentum: second chance (Table 1 top-right).
    // Demote at revisit only if the page was not accessed since the
    // mark: with saturating counters "frequency did not grow" cannot
    // distinguish idle from still-saturated-hot, so the momentum
    // tracker provides the accessed-since-mark signal.
    SecondChanceMark& mark = second_chance_[unit];
    if (mark.freq_at_mark == kNoMark) {
      mark.freq_at_mark = freq;
      mark.mark_time_ns = now;
      ++second_chance_pending_;
      return;
    }
    if (now - mark.mark_time_ns < config_.second_chance_revisit_ns) {
      return;
    }
    const bool accessed_since_mark =
        momentum > 0 || freq > mark.freq_at_mark;
    if (!accessed_since_mark && freq <= mark.freq_at_mark) {
      mark.freq_at_mark = kNoMark;
      --second_chance_pending_;
      victims.push_back(unit);
      ++second_chance_demotions_;
    } else {
      // Refresh the mark so the next revisit measures a fresh window.
      mark.freq_at_mark = freq;
      mark.mark_time_ns = now;
    }
  };

  for (const bool relaxed : {false, true}) {
    BudgetedResidentScan(mem, &scan_cursor_, footprint,
                         config_.scan_units_per_tick, Tier::kFast,
                         [&] { return victims.size() >= needed; },
                         [&](PageId unit) { classify(unit, relaxed); });
    if (victims.size() >= needed) break;
  }

  // The relaxed pass can rescan a wrapped cursor range; demote once.
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()),
                victims.end());
  if (!victims.empty()) migration().Demote(victims, now, reason);
  return victims.size();
}

void HybridTierPolicy::Tick(TimeNs now) {
  UpdateThreshold();
  WatermarkDemotion(now);
}

size_t HybridTierPolicy::MetadataBytes() const {
  size_t bytes = freq_->memory_bytes();
  if (momentum_) bytes += momentum_->memory_bytes();
  bytes += histogram_->buckets().size() * sizeof(uint64_t);
  // The design's second-chance list holds one record per *marked* page
  // (the dense array is a simulator-side layout choice, not metadata
  // the real system would allocate), so the Table-4 metric charges the
  // marked count at the legacy per-entry size.
  bytes += second_chance_pending_ * 24;
  return bytes;
}

}  // namespace hybridtier
