#include "core/simulation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "multitenant/tenant_stats.h"

namespace hybridtier {

Simulation::Simulation(const SimulationConfig& config, Workload* workload,
                       TieringPolicy* policy)
    : config_(config),
      workload_(workload),
      policy_(policy),
      window_(config.latency_window),
      reservoir_(65536, config.seed ^ 0xfeedULL) {
  HT_ASSERT(workload != nullptr && policy != nullptr,
            "simulation needs a workload and a policy");
  HT_ASSERT(config.fast_tier_fraction > 0.0 &&
                config.fast_tier_fraction <= 1.0,
            "fast tier fraction must be in (0,1], got ",
            config.fast_tier_fraction);

  const uint64_t footprint_pages = workload->footprint_pages();
  const uint64_t units_per_page =
      config.mode == PageMode::kHuge ? kPagesPerHugePage : 1;
  footprint_units_ =
      std::max<uint64_t>(1, (footprint_pages + units_per_page - 1) /
                                units_per_page);
  fast_capacity_units_ = std::max<uint64_t>(
      16, static_cast<uint64_t>(config.fast_tier_fraction *
                                static_cast<double>(footprint_units_)));
  fast_capacity_units_ = std::min(fast_capacity_units_, footprint_units_);

  // Fault schedule parses before the timing model exists: an outage or
  // degradation with the unbounded-backlog queue model would integrate
  // delay forever (no drain during the fault), so any such schedule
  // force-enables the bounded queue — loudly when the caller had it off.
  FaultSchedule fault_schedule;
  if (!config.faults.empty()) {
    fault_schedule = ParseFaultSpec(config.faults);
    if (fault_schedule.HasDownOrDegrade() && !config_.perf.bounded_queue) {
      HT_WARN("fault schedule '", config.faults,
              "' requires the bounded queue model; forcing "
              "perf.bounded_queue=true");
      config_.perf.bounded_queue = true;
    }
  }

  if (config.topology.empty()) {
    // No topology configured: the exact legacy construction path (one
    // endpoint from the default slow tier), pinned bit-identical by
    // the golden determinism tests.
    memory_ = std::make_unique<TieredMemory>(
        footprint_units_, fast_capacity_units_, footprint_units_,
        config.allocation);
    perf_ = std::make_unique<PerfModel>(
        config_.perf, DefaultFastTier(fast_capacity_units_),
        DefaultSlowTier(footprint_units_));
  } else {
    const Topology topology = ParseTopologySpec(config.topology);
    memory_ = std::make_unique<TieredMemory>(
        footprint_units_, fast_capacity_units_, footprint_units_,
        config.allocation, topology.endpoint_count(),
        topology.interleave_units);
    perf_ = std::make_unique<PerfModel>(
        config_.perf, DefaultFastTier(fast_capacity_units_),
        DefaultSlowTier(footprint_units_), topology);
  }
  hierarchy_ = std::make_unique<CacheHierarchy>(config.cache);
  migration_ =
      std::make_unique<MigrationEngine>(memory_.get(), perf_.get(),
                                        config.mode);
  // Metadata lines are buffered in the concrete counter and replayed
  // into the hierarchy at flush points; with measurement off they are
  // only counted, matching the legacy NullTrafficSink.
  metadata_counter_.SetRecording(config.measure_metadata_traffic);

  // Resolve the telemetry sinks before Bind: the migration engine's
  // track registers first (stable tid), and the policy sees the trace
  // through its context so it can register its own tracks in Bind.
  metrics_ = config.telemetry.metrics;
  trace_ = config.telemetry.trace;
  stages_ = config.telemetry.stages;
  attr_ = config.telemetry.attribution;
  audit_ = config.telemetry.audit;
  if (audit_ != nullptr) {
    // The audit hangs off the migration engine so policies reach it
    // through migration().audit() without a new context field; the
    // labeler's per-unit stamps are sized to the footprint here.
    audit_->Configure(footprint_units_);
    migration_->SetAudit(audit_);
  }
  if (trace_ != nullptr) {
    migration_->SetTrace(trace_, trace_->Track("migration"));
    sampler_track_ = trace_->Track("sampler");
  }

  PolicyContext context;
  context.memory = memory_.get();
  context.migration = migration_.get();
  context.metadata_sink = &metadata_counter_;
  context.perf = perf_.get();
  context.trace = trace_;
  context.mode = config.mode;
  context.footprint_units = footprint_units_;
  context.fast_capacity_units = fast_capacity_units_;
  policy_->Bind(context);

  // Resolve the dispatch mode once: the policy's declared interest, or
  // forced per-access legacy dispatch when batching is disabled.
  access_interest_ = config.batch_execution
                         ? policy_->access_interest()
                         : AccessInterest::kInline;
  access_events_.reserve(256);
  sample_buffer_.reserve(1024);

  // Multi-tenant workloads carry per-op attribution; when present, the
  // run also produces per-tenant results.
  tenant_source_ = dynamic_cast<TenantTagSource*>(workload);
  if (tenant_source_ != nullptr) {
    const uint32_t tenants = tenant_source_->tenant_count();
    // Register the tenant layout with the memory system so per-tenant
    // occupancy reads (every stats interval) are O(tenants) counter
    // lookups instead of O(footprint) residency rescans.
    std::vector<PageRange> regions;
    regions.reserve(tenants);
    for (uint32_t t = 0; t < tenants; ++t) {
      regions.push_back(tenant_source_->tenant_units(t, config.mode));
    }
    memory_->DefineRegions(regions);
    if (config.tenant_sample_budget) {
      BudgetedSamplerConfig sampler_config;
      sampler_config.base_period = config.sample_period;
      sampler_config.buffer_capacity = config.sample_buffer;
      sampler_config.adapt_window_accesses = config.sample_adapt_window;
      sampler_config.seed = config.seed;
      budgeted_sampler_ =
          std::make_unique<BudgetedSampler>(sampler_config, tenants);
    }
    tenant_states_.reserve(tenants);
    for (uint32_t t = 0; t < tenants; ++t) {
      // Distinct multiplier from MakeMuxWorkload's per-tenant workload
      // seeds, so no reservoir ever replays a tenant's access RNG.
      uint64_t state = config.seed ^ (0xc2b2ae3d27d4eb4fULL * (t + 1));
      tenant_states_.emplace_back(SplitMix64Next(state),
                                  config.latency_window,
                                  std::max<size_t>(16,
                                                   config.tenant_reservoir));
    }
    // Presence schedule for O(active) interval accounting: windowless
    // tenants are present for the whole run; everyone else enters and
    // leaves `present_` as the stats clock crosses their window edges.
    for (uint32_t t = 0; t < tenants; ++t) {
      const auto windows = tenant_source_->tenant_windows(t);
      if (windows.empty()) {
        present_.push_back(t);
        continue;
      }
      for (const auto& [arrival_ns, departure_ns] : windows) {
        presence_edges_.push_back(
            PresenceEdge{arrival_ns, t, /*arrival=*/true});
        if (departure_ns != 0) {
          presence_edges_.push_back(
              PresenceEdge{departure_ns, t, /*arrival=*/false});
        }
      }
    }
    std::sort(presence_edges_.begin(), presence_edges_.end(),
              [](const PresenceEdge& a, const PresenceEdge& b) {
                return a.at != b.at ? a.at < b.at : a.tenant < b.tenant;
              });
  }
  // Exactly one sampler exists per run: the per-tenant budgeted one
  // when enabled (tenant runs), otherwise the global-period sampler.
  if (budgeted_sampler_ == nullptr) {
    sampler_ = std::make_unique<AccessSampler>(
        config.sample_period, config.sample_buffer, config.seed);
  }
  quota_stats_ = dynamic_cast<const TenantQuotaStatsSource*>(policy_);
  if (attr_ != nullptr) {
    attr_->Configure(perf_->EndpointCount(),
                     tenant_source_ != nullptr
                         ? tenant_source_->tenant_count()
                         : 1);
  }
  if (!fault_schedule.empty()) {
    // After Bind so health transitions reach a bound policy, before
    // Advance(0) so a schedule starting at t=0 applies immediately.
    fault_runtime_ = std::make_unique<FaultRuntime>(
        fault_schedule, config.fault_runtime, memory_.get(), perf_.get(),
        migration_.get(), policy_, trace_);
    faults_on_ = true;
    fault_runtime_->Advance(0);
  }
  if (config.watchdog) {
    watchdog_ = std::make_unique<InvariantWatchdog>(memory_.get(), attr_);
    if (const auto* source =
            dynamic_cast<const InvariantSource*>(policy_)) {
      watchdog_->RegisterSource("policy", source);
    }
  }
  SetupTelemetry();
}

void Simulation::SetupTelemetry() {
  if (trace_ != nullptr && budgeted_sampler_ != nullptr) {
    last_periods_.resize(tenant_source_->tenant_count());
    for (uint32_t t = 0; t < last_periods_.size(); ++t) {
      last_periods_[t] = budgeted_sampler_->period(t);
    }
  }
  if (metrics_ == nullptr) return;
  MetricRegistry& m = *metrics_;

  // Engine volume and memory-system counters: probes read the live run
  // state the simulation already maintains — no double bookkeeping on
  // the hot path, one read per stats interval.
  m.AddProbe("sim/ops", [this] { return static_cast<double>(ops_); });
  m.AddProbe("sim/accesses",
             [this] { return static_cast<double>(accesses_); });
  m.AddProbe("mem/fast_fill_accesses", [this] {
    return static_cast<double>(result_.fast_mem_accesses);
  });
  m.AddProbe("mem/slow_fill_accesses", [this] {
    return static_cast<double>(result_.slow_mem_accesses);
  });
  m.AddProbe("mem/hint_faults",
             [this] { return static_cast<double>(result_.hint_faults); });
  m.AddProbe("mem/fast_used_units", [this] {
    return static_cast<double>(memory_->UsedPages(Tier::kFast));
  });

  // Per-endpoint device counters: traffic and residency probes plus a
  // queue-delay histogram per slow endpoint (observed on slow demand
  // fills in the hot loop). Registered for every layout — the default
  // single-endpoint run reports its one device as endpoint 0.
  endpoint_queue_hist_.reserve(perf_->EndpointCount());
  for (uint32_t e = 0; e < perf_->EndpointCount(); ++e) {
    const std::string prefix =
        "mem/endpoint" + std::to_string(e) + "/";
    m.AddProbe(prefix + "bytes", [this, e] {
      return static_cast<double>(perf_->EndpointBytes(e));
    });
    m.AddProbe(prefix + "accesses", [this, e] {
      return static_cast<double>(perf_->EndpointAccesses(e));
    });
    m.AddProbe(prefix + "resident_units", [this, e] {
      return static_cast<double>(memory_->EndpointResident(e));
    });
    endpoint_queue_hist_.push_back(
        m.AddHistogram(prefix + "queue_delay_ns"));
    if (fault_runtime_ != nullptr) {
      // Health as a numeric series (EndpointHealth enum value). Only
      // registered with a fault runtime so fault-free metric layouts
      // stay byte-identical to the pre-fault columns.
      m.AddProbe(prefix + "state", [this, e] {
        return static_cast<double>(
            static_cast<uint32_t>(fault_runtime_->state(e)));
      });
    }
  }

  if (fault_runtime_ != nullptr) {
    m.AddProbe("fault/transitions", [this] {
      return static_cast<double>(fault_runtime_->stats().transitions);
    });
    m.AddProbe("fault/endpoints_downed", [this] {
      return static_cast<double>(fault_runtime_->stats().endpoints_downed);
    });
    m.AddProbe("fault/endpoints_recovered", [this] {
      return static_cast<double>(
          fault_runtime_->stats().endpoints_recovered);
    });
    m.AddProbe("fault/stalled_accesses", [this] {
      return static_cast<double>(fault_runtime_->stats().stalled_accesses);
    });
    m.AddProbe("fault/evacuated_pages", [this] {
      return static_cast<double>(fault_runtime_->stats().evacuated_pages);
    });
    m.AddProbe("fault/spilled_pages", [this] {
      return static_cast<double>(fault_runtime_->stats().spilled_pages);
    });
    m.AddProbe("fault/evac_retries", [this] {
      return static_cast<double>(fault_runtime_->stats().evac_retries);
    });
  }
  if (watchdog_ != nullptr) {
    m.AddProbe("fault/watchdog_checks", [this] {
      return static_cast<double>(watchdog_->checks_run());
    });
    m.AddProbe("fault/watchdog_violations", [this] {
      return static_cast<double>(watchdog_->violations());
    });
  }

  m.AddProbe("migration/promotion_batches", [this] {
    return static_cast<double>(migration_->stats().promotion_batches);
  });
  m.AddProbe("migration/promoted_pages", [this] {
    return static_cast<double>(migration_->stats().promoted_pages);
  });
  m.AddProbe("migration/demotion_batches", [this] {
    return static_cast<double>(migration_->stats().demotion_batches);
  });
  m.AddProbe("migration/demoted_pages", [this] {
    return static_cast<double>(migration_->stats().demoted_pages);
  });
  m.AddProbe("migration/failed_promotions", [this] {
    return static_cast<double>(migration_->stats().failed_promotions);
  });
  m.AddProbe("migration/time_ns", [this] {
    return static_cast<double>(migration_->stats().migration_time_ns);
  });

  m.AddProbe("cache/l1_app_misses", [this] {
    return static_cast<double>(hierarchy_->L1Misses(AccessOwner::kApp));
  });
  m.AddProbe("cache/l1_tiering_misses", [this] {
    return static_cast<double>(hierarchy_->L1Misses(AccessOwner::kTiering));
  });
  m.AddProbe("cache/llc_app_misses", [this] {
    return static_cast<double>(hierarchy_->LlcMisses(AccessOwner::kApp));
  });
  m.AddProbe("cache/llc_tiering_misses", [this] {
    return static_cast<double>(
        hierarchy_->LlcMisses(AccessOwner::kTiering));
  });

  m.AddProbe("sampler/samples_taken", [this] {
    return static_cast<double>(budgeted_sampler_ != nullptr
                                   ? budgeted_sampler_->samples_taken()
                                   : sampler_->samples_taken());
  });
  m.AddProbe("sampler/samples_dropped", [this] {
    return static_cast<double>(budgeted_sampler_ != nullptr
                                   ? budgeted_sampler_->samples_dropped()
                                   : sampler_->samples_dropped());
  });
  m.AddProbe("policy/metadata_touches", [this] {
    return static_cast<double>(metadata_counter_.touches());
  });
  m.AddProbe("policy/metadata_bytes", [this] {
    return static_cast<double>(policy_->MetadataBytes());
  });
  if (trace_ != nullptr) {
    // The trace cap drops deterministically; surfacing the count as a
    // metric lets sweeps assert nothing silently fell off the record.
    m.AddProbe("obs/trace/dropped_events", [this] {
      return static_cast<double>(trace_->dropped_events());
    });
  }

  if (attr_ != nullptr) {
    // Latency decomposition: one cumulative-ns series per component
    // plus the total they must sum to. All counters are uint64 ns well
    // below 2^53, so the identity holds exactly in the double-valued
    // metric series too (tests EXPECT_EQ on snapshot values).
    for (uint32_t c = 0;
         c < static_cast<uint32_t>(LatencyComponent::kCount); ++c) {
      const LatencyComponent component = static_cast<LatencyComponent>(c);
      m.AddProbe(
          std::string("attr/") + LatencyComponentName(component) + "_ns",
          [this, component] {
            return static_cast<double>(attr_->component_ns(component));
          });
    }
    m.AddProbe("attr/total_op_latency_ns", [this] {
      return static_cast<double>(attr_->op_latency_ns());
    });
    for (uint32_t e = 0; e < perf_->EndpointCount(); ++e) {
      const std::string prefix =
          "attr/endpoint" + std::to_string(e) + "/";
      m.AddProbe(prefix + "slow_idle_ns", [this, e] {
        return static_cast<double>(attr_->endpoint_slow_idle_ns(e));
      });
      m.AddProbe(prefix + "slow_queue_ns", [this, e] {
        return static_cast<double>(attr_->endpoint_slow_queue_ns(e));
      });
    }
  }

  if (audit_ != nullptr) {
    m.AddProbe("audit/total_batches", [this] {
      return static_cast<double>(audit_->total_batches());
    });
    m.AddProbe("audit/premature_demotions", [this] {
      return static_cast<double>(audit_->premature_demotions());
    });
    m.AddProbe("audit/late_promotions", [this] {
      return static_cast<double>(audit_->late_promotions());
    });
    m.AddProbe("audit/quota_truncated_pages", [this] {
      return static_cast<double>(audit_->quota_truncated_pages());
    });
    m.AddProbe("audit/cooling_epochs", [this] {
      return static_cast<double>(audit_->cooling_epochs());
    });
    m.AddProbe("audit/endpoint_reorders", [this] {
      return static_cast<double>(audit_->endpoint_reorders());
    });
    m.AddProbe("audit/dropped_records", [this] {
      return static_cast<double>(audit_->dropped_records());
    });
    for (uint32_t r = 1;
         r < static_cast<uint32_t>(MigrationReason::kCount); ++r) {
      const MigrationReason reason = static_cast<MigrationReason>(r);
      const std::string prefix =
          std::string("audit/reason/") + MigrationReasonName(reason) + "/";
      m.AddProbe(prefix + "batches", [this, reason] {
        return static_cast<double>(audit_->batches(reason));
      });
      m.AddProbe(prefix + "promoted_pages", [this, reason] {
        return static_cast<double>(audit_->promoted_pages(reason));
      });
      m.AddProbe(prefix + "demoted_pages", [this, reason] {
        return static_cast<double>(audit_->demoted_pages(reason));
      });
    }
  }

  if (tenant_source_ != nullptr) {
    // Fleet-scale telemetry cap: per-tenant probe sets only for the K
    // heaviest tenants (ties by admission order), everyone else rolled
    // up into one "tenant/other/" aggregate. Results and timelines are
    // unaffected — this caps only the metric surface.
    const uint32_t count = tenant_source_->tenant_count();
    std::vector<uint32_t> order(count);
    for (uint32_t t = 0; t < count; ++t) order[t] = t;
    const uint32_t top_k =
        config_.tenant_metrics_top_k == 0
            ? count
            : std::min(count, config_.tenant_metrics_top_k);
    std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
      const double wa = tenant_source_->tenant_weight(a);
      const double wb = tenant_source_->tenant_weight(b);
      return wa != wb ? wa > wb : a < b;
    });
    std::vector<uint32_t> selected(order.begin(), order.begin() + top_k);
    std::vector<uint32_t> other(order.begin() + top_k, order.end());
    // Register in admission order so metric columns stay stable when K
    // covers the whole fleet (the historical layout).
    std::sort(selected.begin(), selected.end());
    std::sort(other.begin(), other.end());
    for (const uint32_t t : selected) {
      const std::string prefix =
          "tenant/" + std::string(tenant_source_->tenant_name(t)) + "/";
      m.AddProbe(prefix + "fast_units", [this, t] {
        return static_cast<double>(memory_->RegionResident(t, Tier::kFast));
      });
      m.AddProbe(prefix + "accesses", [this, t] {
        return static_cast<double>(tenant_states_[t].accesses);
      });
      if (budgeted_sampler_ != nullptr) {
        m.AddProbe(prefix + "sample_period", [this, t] {
          return static_cast<double>(budgeted_sampler_->period(t));
        });
      }
      if (quota_stats_ != nullptr) {
        m.AddProbe(prefix + "quota_units", [this, t] {
          TenantQuotaStats stats;
          return quota_stats_->GetTenantQuotaStats(t, &stats)
                     ? static_cast<double>(stats.quota_units)
                     : 0.0;
        });
        m.AddProbe(prefix + "marginal_utility", [this, t] {
          TenantQuotaStats stats;
          return quota_stats_->GetTenantQuotaStats(t, &stats)
                     ? stats.marginal_utility
                     : 0.0;
        });
        m.AddProbe(prefix + "shadow_samples", [this, t] {
          TenantQuotaStats stats;
          return quota_stats_->GetTenantQuotaStats(t, &stats)
                     ? static_cast<double>(stats.shadow_samples)
                     : 0.0;
        });
      }
    }
    if (!other.empty()) {
      m.AddProbe("tenant/other/count", [other] {
        return static_cast<double>(other.size());
      });
      m.AddProbe("tenant/other/fast_units", [this, other] {
        uint64_t total = 0;
        for (const uint32_t t : other) {
          total += memory_->RegionResident(t, Tier::kFast);
        }
        return static_cast<double>(total);
      });
      m.AddProbe("tenant/other/accesses", [this, other] {
        uint64_t total = 0;
        for (const uint32_t t : other) total += tenant_states_[t].accesses;
        return static_cast<double>(total);
      });
      if (quota_stats_ != nullptr) {
        m.AddProbe("tenant/other/quota_units", [this, other] {
          uint64_t total = 0;
          for (const uint32_t t : other) {
            TenantQuotaStats stats;
            if (quota_stats_->GetTenantQuotaStats(t, &stats)) {
              total += stats.quota_units;
            }
          }
          return static_cast<double>(total);
        });
      }
    }
  }

  op_latency_hist_ = m.AddHistogram("sim/op_latency_ns");
}

void Simulation::EmitSamplerAdaptEvents(TimeNs at) {
  if (budgeted_sampler_ == nullptr) return;
  for (uint32_t t = 0; t < last_periods_.size(); ++t) {
    const uint64_t period = budgeted_sampler_->period(t);
    if (period != last_periods_[t]) {
      trace_->Instant(sampler_track_, "period_adapt", at,
                      {{"tenant", static_cast<double>(t)},
                       {"period", static_cast<double>(period)}});
      last_periods_[t] = period;
    }
  }
}

Simulation::~Simulation() = default;

namespace {
/** Inserts `value` into ascending `set` (no-op if already there). */
void InsertSorted(std::vector<uint32_t>* set, uint32_t value) {
  const auto it = std::lower_bound(set->begin(), set->end(), value);
  if (it == set->end() || *it != value) set->insert(it, value);
}

/** Removes `value` from ascending `set` (no-op if absent). */
void EraseSorted(std::vector<uint32_t>* set, uint32_t value) {
  const auto it = std::lower_bound(set->begin(), set->end(), value);
  if (it != set->end() && *it == value) set->erase(it);
}
}  // namespace

void Simulation::AdvancePresence(TimeNs at) {
  while (presence_cursor_ < presence_edges_.size() &&
         presence_edges_[presence_cursor_].at <= at) {
    const PresenceEdge& edge = presence_edges_[presence_cursor_++];
    if (edge.arrival) {
      // A re-arrival may land while the previous window's pages are
      // still draining; the tenant rejoins the present walk either way.
      EraseSorted(&draining_, edge.tenant);
      InsertSorted(&present_, edge.tenant);
    } else {
      EraseSorted(&present_, edge.tenant);
      InsertSorted(&draining_, edge.tenant);
    }
  }
}

void Simulation::RecordTimelinePoint(TimeNs at, bool idle) {
  // A point inside an all-idle churn gap has no op latency; carrying
  // the last window median forward would plot an idle machine as still
  // running.
  result_.latency_timeline.Add(at, idle ? 0.0 : window_.Median());
  result_.p99_timeline.Add(at, idle ? 0.0 : window_.Quantile(0.99));

  const uint64_t l1_app = hierarchy_->L1Misses(AccessOwner::kApp);
  const uint64_t l1_tier = hierarchy_->L1Misses(AccessOwner::kTiering);
  const uint64_t llc_app = hierarchy_->LlcMisses(AccessOwner::kApp);
  const uint64_t llc_tier = hierarchy_->LlcMisses(AccessOwner::kTiering);

  const uint64_t d_l1_app = l1_app - last_l1_app_misses_;
  const uint64_t d_l1_tier = l1_tier - last_l1_tiering_misses_;
  const uint64_t d_llc_app = llc_app - last_llc_app_misses_;
  const uint64_t d_llc_tier = llc_tier - last_llc_tiering_misses_;
  last_l1_app_misses_ = l1_app;
  last_l1_tiering_misses_ = l1_tier;
  last_llc_app_misses_ = llc_app;
  last_llc_tiering_misses_ = llc_tier;

  const uint64_t l1_total = d_l1_app + d_l1_tier;
  const uint64_t llc_total = d_llc_app + d_llc_tier;
  result_.tiering_l1_share_timeline.Add(
      at, l1_total ? static_cast<double>(d_l1_tier) /
                         static_cast<double>(l1_total)
                   : 0.0);
  result_.tiering_llc_share_timeline.Add(
      at, llc_total ? static_cast<double>(d_llc_tier) /
                          static_cast<double>(llc_total)
                    : 0.0);
  result_.fast_used_timeline.Add(
      at, static_cast<double>(memory_->UsedPages(Tier::kFast)) /
              static_cast<double>(
                  std::max<uint64_t>(1, fast_capacity_units_)));

  if (tenant_source_ != nullptr) {
    // Per-tenant adaptation series: fast-tier occupancy share and the
    // recent-window latency median, plus the weighted fairness index
    // over the tenants present right now (absent tenants hold nothing
    // and would misread as unfairness). The walk covers only present
    // and still-draining tenants — O(active), not O(fleet) — so the
    // timelines are sparse: a tenant has no points before its first
    // arrival or after its drain completes (absence == nothing
    // resident, which time-indexed readers already treat as zero).
    AdvancePresence(at);
    const double capacity =
        static_cast<double>(std::max<uint64_t>(1, fast_capacity_units_));
    scratch_shares_.clear();
    scratch_weights_.clear();
    for (const uint32_t t : present_) {
      TenantState& state = tenant_states_[t];
      const double share =
          static_cast<double>(memory_->RegionResident(t, Tier::kFast)) /
          capacity;
      state.occupancy_timeline.Add(at, share);
      // An idle tenant serves no ops; carrying its last window median
      // forward would plot it as still running.
      state.latency_timeline.Add(at, idle ? 0.0 : state.window.Median());
      scratch_shares_.push_back(share);
      scratch_weights_.push_back(tenant_source_->tenant_weight(t));
    }
    result_.stats_tenant_visits += present_.size() + draining_.size();
    // Departed tenants keep reporting occupancy while the policy drains
    // their region, then leave the walk after one explicit zero point
    // (benches detect "drained by t" from that point).
    for (size_t i = 0; i < draining_.size();) {
      const uint32_t t = draining_[i];
      TenantState& state = tenant_states_[t];
      const uint64_t fast_resident =
          memory_->RegionResident(t, Tier::kFast);
      state.occupancy_timeline.Add(
          at, static_cast<double>(fast_resident) / capacity);
      state.latency_timeline.Add(at, 0.0);
      if (fast_resident == 0) {
        draining_.erase(draining_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    result_.weighted_fairness_timeline.Add(
        at, WeightedJainFairnessIndex(scratch_shares_, scratch_weights_));
  }

  // Close the labeler's interval before the metric snapshot so the
  // mis-tiering counters a snapshot reads reflect this interval.
  if (audit_ != nullptr) audit_->AdvanceInterval(at);
  if (trace_ != nullptr) EmitSamplerAdaptEvents(at);
  if (metrics_ != nullptr) metrics_->Snapshot(at);

  // Corruption aborts at the interval it happened, with the failed
  // check's recount report, instead of surfacing as a wrong figure.
  if (watchdog_ != nullptr && !watchdog_->RunChecks(at)) [[unlikely]] {
    HT_FATAL("invariant watchdog tripped: ", watchdog_->last_error());
  }
}

void Simulation::FlushMetadataTraffic() {
  if (metadata_counter_.empty()) return;
  for (const uint64_t line : metadata_counter_.lines()) {
    hierarchy_->Access(line, AccessOwner::kTiering);
  }
  metadata_counter_.Clear();
}

template <bool kProfiled>
void Simulation::RunOpImpl(const OpTrace& op, TenantState* tenant) {
  // Per-stage wall accumulators; the whole block folds away in the
  // unprofiled instantiation (the common case — profiling samples one
  // op in N, everything else runs this function with zero clock reads).
  [[maybe_unused]] uint64_t cache_wall = 0;
  [[maybe_unused]] uint64_t policy_wall = 0;
  [[maybe_unused]] uint64_t sampler_wall = 0;

  // Diagnosis feeds are guarded per site: a null attribution/audit
  // pointer (the default) costs one predicted branch and changes no
  // modeled quantity, so the disabled path stays bit-identical.
  const uint32_t attr_tenant =
      attr_ != nullptr && tenant_source_ != nullptr
          ? tenant_source_->last_tenant()
          : 0;

  now_ += op.think_time_ns;  // Idle stall preceding the accesses.
  TimeNs op_latency = config_.op_overhead_ns;
  now_ += config_.op_overhead_ns;
  if (attr_ != nullptr) [[unlikely]] {
    attr_->AddOpOverhead(attr_tenant, config_.op_overhead_ns);
  }

  const MemoryAccess* accesses = op.accesses.data();
  const size_t count = op.accesses.size();
  const PageMode mode = config_.mode;
  const bool inline_policy = access_interest_ == AccessInterest::kInline;
  const bool batch_policy = access_interest_ == AccessInterest::kBatched;

  for (size_t i = 0; i < count; ++i) {
    [[maybe_unused]] uint64_t t0 = 0, t1 = 0, t2 = 0;
    if constexpr (kProfiled) t0 = StageProfiler::NowNs();

    const MemoryAccess& access = accesses[i];
    const PageId unit = TrackingUnitOfAddr(access.addr, mode);
    const TouchResult touch = memory_->Touch(unit, now_);

    TimeNs latency;
    const HitLevel level =
        hierarchy_->Access(access.addr, AccessOwner::kApp);
    if (level == HitLevel::kMemory) {
      latency = perf_->MemoryAccess(touch.tier, touch.endpoint, now_);
      if (touch.tier == Tier::kFast) {
        ++result_.fast_mem_accesses;
        if (tenant != nullptr) ++tenant->fast_mem_accesses;
        if (attr_ != nullptr) [[unlikely]] {
          const TimeNs idle = perf_->IdleLatency(Tier::kFast);
          attr_->AddFastFill(attr_tenant, idle, latency - idle);
        }
      } else if (faults_on_ &&
                 perf_->EndpointDown(touch.endpoint)) [[unlikely]] {
        // Access to a failed device: the timing model returned the
        // constant fault stall, which belongs to no idle/queue split —
        // the whole latency is one attribution component, keeping
        // Σ components == Σ latency exact through an outage.
        ++result_.slow_mem_accesses;
        if (tenant != nullptr) ++tenant->slow_mem_accesses;
        if (attr_ != nullptr) [[unlikely]] {
          attr_->AddFaultStall(attr_tenant, latency);
        }
        if (audit_ != nullptr) [[unlikely]] {
          audit_->OnSlowFill(unit, now_);
        }
      } else {
        ++result_.slow_mem_accesses;
        if (tenant != nullptr) ++tenant->slow_mem_accesses;
        if (!endpoint_queue_hist_.empty()) [[unlikely]] {
          // Queue delay = modeled latency minus the device's idle
          // latency; pure observation, never fed back into the run.
          endpoint_queue_hist_[touch.endpoint]->Observe(
              latency - perf_->EndpointIdleLatency(touch.endpoint));
        }
        if (attr_ != nullptr) [[unlikely]] {
          // Same exact recovery: idle + queue partitions the modeled
          // latency with no remainder (integer subtraction).
          const TimeNs idle = perf_->EndpointIdleLatency(touch.endpoint);
          attr_->AddSlowFill(attr_tenant, touch.endpoint, idle,
                             latency - idle);
        }
        if (audit_ != nullptr) [[unlikely]] {
          audit_->OnSlowFill(unit, now_);
        }
      }
    } else {
      latency = level == HitLevel::kL1 ? perf_->L1Latency()
                                       : perf_->LlcLatency();
      if (attr_ != nullptr) [[unlikely]] {
        if (level == HitLevel::kL1) {
          attr_->AddL1Hit(attr_tenant, latency);
        } else {
          attr_->AddLlcHit(attr_tenant, latency);
        }
      }
    }
    if (touch.hint_fault) [[unlikely]] {
      latency += perf_->HintFaultLatency();
      ++result_.hint_faults;
      if (attr_ != nullptr) {
        attr_->AddHintFault(attr_tenant, perf_->HintFaultLatency());
      }
    }
    if constexpr (kProfiled) {
      t1 = StageProfiler::NowNs();
      cache_wall += t1 - t0;
    }

    if (inline_policy) {
      // Legacy-exact dispatch: the policy may migrate or touch metadata
      // here, and the next access must observe both.
      policy_->OnAccess(unit, touch, now_);
      if (!metadata_counter_.empty()) FlushMetadataTraffic();
    } else if (batch_policy) {
      access_events_.push_back(TouchEvent{unit, touch, now_});
    }
    // Policies with no access interest (the sample-driven designs) pay
    // nothing here at all.
    if constexpr (kProfiled) {
      t2 = StageProfiler::NowNs();
      policy_wall += t2 - t1;
    }

    if (budgeted_sampler_ != nullptr) {
      budgeted_sampler_->OnAccess(tenant_source_->last_tenant(), unit,
                                  touch.tier, now_);
    } else {
      sampler_->OnAccess(unit, touch.tier, now_);
    }
    if constexpr (kProfiled) sampler_wall += StageProfiler::NowNs() - t2;

    now_ += latency;
    op_latency += latency;
  }
  accesses_ += count;
  // Memory-service ns of this op (everything but overhead and stalls);
  // the virtual-time stage profile's kCache bucket.
  [[maybe_unused]] const TimeNs access_ns =
      op_latency - config_.op_overhead_ns;

  if (batch_policy) {
    // One virtual dispatch for the whole op; events carry the same
    // (unit, touch, now) triples the per-access path would have seen.
    [[maybe_unused]] uint64_t t = 0;
    if constexpr (kProfiled) t = StageProfiler::NowNs();
    policy_->OnAccessBatch(access_events_);
    access_events_.clear();
    FlushMetadataTraffic();
    if constexpr (kProfiled) policy_wall += StageProfiler::NowNs() - t;
  }

  {
    // Drain the PEBS buffer to the policy (the tiering thread's loop).
    [[maybe_unused]] uint64_t t = 0;
    if constexpr (kProfiled) t = StageProfiler::NowNs();
    sample_buffer_.clear();
    if (budgeted_sampler_ != nullptr) {
      budgeted_sampler_->Drain(&sample_buffer_, sample_buffer_.capacity());
    } else {
      sampler_->Drain(&sample_buffer_, sample_buffer_.capacity());
    }
    if constexpr (kProfiled) {
      const uint64_t drained = StageProfiler::NowNs();
      sampler_wall += drained - t;
      t = drained;
    }
    for (const SampleRecord& sample : sample_buffer_) {
      policy_->OnSample(sample);
    }
    FlushMetadataTraffic();
    if constexpr (kProfiled) policy_wall += StageProfiler::NowNs() - t;
  }

  [[maybe_unused]] uint64_t t_maint = 0;
  if constexpr (kProfiled) t_maint = StageProfiler::NowNs();

  // Periodic policy maintenance. The fault runtime advances first so
  // the policy's tick sees the health state (and any evacuation moves)
  // as of its own timestamp.
  while (now_ >= next_tick_) {
    if (faults_on_) [[unlikely]] {
      fault_runtime_->Advance(next_tick_);
    }
    policy_->Tick(next_tick_);
    FlushMetadataTraffic();
    next_tick_ += config_.tick_interval_ns;
  }

  // Application-visible migration stalls: each move_pages batch the
  // policy issued since the last op sends TLB-shootdown IPIs to the
  // app's cores (see PerfModelConfig::tlb_batch_stall_ns).
  const MigrationStats& mig = migration_->stats();
  const uint64_t batches = mig.promotion_batches + mig.demotion_batches;
  const uint64_t pages = mig.promoted_pages + mig.demoted_pages;
  TimeNs stall_charged = 0;
  if (batches != last_migration_batches_ ||
      pages != last_migration_pages_) {
    const TimeNs stall =
        (batches - last_migration_batches_) *
            config_.perf.tlb_batch_stall_ns +
        (pages - last_migration_pages_) * config_.perf.tlb_page_stall_ns;
    now_ += stall;
    op_latency += stall;
    stall_charged = stall;
    if (attr_ != nullptr) [[unlikely]] {
      attr_->AddMigrationStall(attr_tenant, stall);
    }
    last_migration_batches_ = batches;
    last_migration_pages_ = pages;
  }

  [[maybe_unused]] uint64_t t_account = 0;
  if constexpr (kProfiled) {
    t_account = StageProfiler::NowNs();
    stages_->Record(Stage::kMigration, t_account - t_maint);
  }

  ++ops_;
  window_.Add(static_cast<double>(op_latency));
  reservoir_.Add(static_cast<double>(op_latency));
  if (tenant != nullptr) {
    ++tenant->ops;
    tenant->accesses += count;
    tenant->reservoir.Add(static_cast<double>(op_latency));
    tenant->window.Add(static_cast<double>(op_latency));
  }
  if (op_latency_hist_ != nullptr) op_latency_hist_->Observe(op_latency);
  if (attr_ != nullptr) [[unlikely]] {
    attr_->CloseOp(attr_tenant, op_latency);
  }

  if constexpr (kProfiled) {
    stages_->Record(Stage::kCache, cache_wall);
    stages_->Record(Stage::kPolicy, policy_wall);
    stages_->Record(Stage::kSampler, sampler_wall);
    stages_->Record(Stage::kAccounting, StageProfiler::NowNs() - t_account);
  }
  if (profile_virtual_op_) [[unlikely]] {
    // Virtual-time stage sample: every bucket is a simulated quantity
    // this function already computed, so the profile is a pure function
    // of the event stream (zero clock reads, byte-identical across
    // engines and --jobs). kPolicy/kSampler have no simulated cost —
    // their time is modeled as metadata cache pollution, not latency.
    stages_->Record(Stage::kGeneration, op.think_time_ns);
    stages_->Record(Stage::kCache, access_ns);
    stages_->Record(Stage::kMigration, stall_charged);
    stages_->Record(Stage::kAccounting, config_.op_overhead_ns);
    stages_->RecordOp(op.think_time_ns + op_latency, count);
  }
}

SimulationResult Simulation::Run() {
  OpTrace op;

  next_tick_ = config_.tick_interval_ns;
  next_stats_ = config_.stats_interval_ns;
  bool warmed_up = config_.warmup_accesses == 0;

  if (config_.prefault_at_start) {
    // Application initialization: allocate the whole footprint in
    // address order (see SimulationConfig::prefault_at_start). Tenants
    // that have not arrived yet do not exist yet — their regions stay
    // unallocated until their own first touches.
    if (tenant_source_ != nullptr) {
      for (uint32_t t = 0; t < tenant_source_->tenant_count(); ++t) {
        if (!tenant_source_->tenant_active_at(t, 0)) continue;
        const PageRange range = tenant_source_->tenant_units(t, config_.mode);
        for (PageId unit = range.begin; unit < range.end; ++unit) {
          memory_->Touch(unit, now_);
        }
      }
    } else {
      for (PageId unit = 0; unit < footprint_units_; ++unit) {
        memory_->Touch(unit, now_);
      }
    }
  }

  while (accesses_ < config_.max_accesses) {
    if (config_.max_ops != 0 && ops_ >= config_.max_ops) break;
    if (config_.max_time_ns != 0 && now_ >= config_.max_time_ns) break;

    // Sampled stage profiling: decide before generation so NextOp
    // (live draw or trace replay) is attributed too. A null profiler
    // costs a single predictable branch per op. In virtual-time mode
    // the clock is never read — generation is attributed the op's
    // think time inside RunOpImpl instead.
    const bool profile_op = stages_ != nullptr && stages_->BeginOp();
    const bool wall_profile = profile_op && !stages_->virtual_time();
    const uint64_t op_start =
        wall_profile ? StageProfiler::NowNs() : 0;

    if (!workload_->NextOp(now_, &op)) break;
    if (wall_profile) {
      stages_->Record(Stage::kGeneration,
                      StageProfiler::NowNs() - op_start);
    }

    if (op.accesses.empty()) {
      // Pure idle gap (no tenant runnable before the next arrival):
      // virtual time passes and the policy keeps ticking, but no
      // operation is recorded — an idle machine is not a slow one. The
      // jump is clamped at the run budget so a distant arrival cannot
      // drag the tick loop past the configured end of the run.
      TimeNs target =
          now_ + std::max<TimeNs>(op.think_time_ns, config_.op_overhead_ns);
      if (config_.max_time_ns != 0) {
        target = std::min(target, config_.max_time_ns);
      }
      now_ = std::max(now_ + 1, target);
      // Interleave ticks and stats in schedule order so each timeline
      // point samples the policy state as of its own timestamp, not the
      // state at the end of the gap. A gap spanning thousands of
      // intervals (a distant arrival) replays only its leading and
      // trailing edges: the policy still sees the departure promptly
      // and fresh state before the arrival, without a tick per empty
      // millisecond in between.
      constexpr uint64_t kGapEdgeEvents = 64;
      uint64_t gap_events = 0;
      while (next_tick_ <= now_ || next_stats_ <= now_) {
        if (++gap_events == kGapEdgeEvents) {
          const auto skip_forward = [this](TimeNs next, TimeNs interval) {
            if (next > now_) return next;
            const uint64_t remaining = (now_ - next) / interval;
            if (remaining <= kGapEdgeEvents) return next;
            return next + (remaining - kGapEdgeEvents) * interval;
          };
          next_tick_ = skip_forward(next_tick_, config_.tick_interval_ns);
          next_stats_ =
              skip_forward(next_stats_, config_.stats_interval_ns);
        }
        if (next_tick_ <= next_stats_) {
          if (faults_on_) [[unlikely]] {
            fault_runtime_->Advance(next_tick_);
          }
          policy_->Tick(next_tick_);
          // Replay the tick's metadata traffic before the next timeline
          // point reads the hierarchy's counters.
          FlushMetadataTraffic();
          next_tick_ += config_.tick_interval_ns;
        } else {
          RecordTimelinePoint(next_stats_, /*idle=*/true);
          next_stats_ += config_.stats_interval_ns;
        }
      }
      // Migrations issued by ticks inside the gap (e.g. a departure
      // releasing its region) stall no application — nothing is
      // running. Absorb them so the first op after the gap is not
      // charged for them.
      last_migration_batches_ = migration_->stats().promotion_batches +
                                migration_->stats().demotion_batches;
      last_migration_pages_ = migration_->stats().promoted_pages +
                              migration_->stats().demoted_pages;
      continue;
    }

    TenantState* tenant =
        tenant_source_ == nullptr
            ? nullptr
            : &tenant_states_[tenant_source_->last_tenant()];

    if (profile_op) [[unlikely]] {
      if (wall_profile) {
        RunOpImpl<true>(op, tenant);
        stages_->RecordOp(StageProfiler::NowNs() - op_start,
                          op.accesses.size());
      } else {
        // Virtual-time sample: the unprofiled instantiation (no clock
        // reads) with the simulated-bucket recording switched on.
        profile_virtual_op_ = true;
        RunOpImpl<false>(op, tenant);
        profile_virtual_op_ = false;
      }
    } else {
      RunOpImpl<false>(op, tenant);
    }

    while (now_ >= next_stats_) {
      RecordTimelinePoint(next_stats_);
      next_stats_ += config_.stats_interval_ns;
    }

    if (!warmed_up && accesses_ >= config_.warmup_accesses) {
      warmed_up = true;
      result_.warmup_end_ns = now_;
      hierarchy_->ResetStats();
      reservoir_.Reset();
      result_.fast_mem_accesses = 0;
      result_.slow_mem_accesses = 0;
      result_.hint_faults = 0;
      // Mirror the global resets: volume counters (ops/accesses) keep
      // counting the whole run, measurement stats start over.
      for (TenantState& state : tenant_states_) {
        state.fast_mem_accesses = 0;
        state.slow_mem_accesses = 0;
        state.reservoir.Reset();
      }
      last_l1_app_misses_ = 0;
      last_l1_tiering_misses_ = 0;
      last_llc_app_misses_ = 0;
      last_llc_tiering_misses_ = 0;
    }
  }

  result_.ops = ops_;
  result_.accesses = accesses_;
  result_.duration_ns = now_;
  result_.throughput_mops =
      now_ == 0 ? 0.0
                : static_cast<double>(ops_) * 1000.0 /
                      static_cast<double>(now_);
  result_.median_latency_ns = reservoir_.Quantile(0.5);
  result_.p99_latency_ns = reservoir_.Quantile(0.99);
  result_.mean_latency_ns = reservoir_.Mean();
  result_.migration = migration_->stats();
  if (faults_on_) {
    // One final advance at the run's end time: transitions scheduled
    // inside the last partial tick interval still apply, and pending
    // evacuations get a last drain pass before residency is reported.
    fault_runtime_->Advance(now_);
    result_.fault = fault_runtime_->stats();
  }
  result_.l1_app_misses = hierarchy_->L1Misses(AccessOwner::kApp);
  result_.l1_tiering_misses = hierarchy_->L1Misses(AccessOwner::kTiering);
  result_.llc_app_misses = hierarchy_->LlcMisses(AccessOwner::kApp);
  result_.llc_tiering_misses =
      hierarchy_->LlcMisses(AccessOwner::kTiering);
  result_.metadata_bytes = policy_->MetadataBytes();
  result_.samples_taken = budgeted_sampler_ != nullptr
                              ? budgeted_sampler_->samples_taken()
                              : sampler_->samples_taken();
  result_.samples_dropped = budgeted_sampler_ != nullptr
                                ? budgeted_sampler_->samples_dropped()
                                : sampler_->samples_dropped();
  // Close the labeler's trailing partial interval, then the metric
  // series, at the final virtual timestamp (a no-op when the run ended
  // exactly on a stats boundary).
  if (audit_ != nullptr) audit_->AdvanceInterval(now_);
  if (metrics_ != nullptr) metrics_->Snapshot(now_);
  if (watchdog_ != nullptr && !watchdog_->RunChecks(now_)) {
    HT_FATAL("invariant watchdog tripped at end of run: ",
             watchdog_->last_error());
  }
  FinalizeTenantResults();
  return result_;
}

void Simulation::FinalizeTenantResults() {
  if (tenant_source_ == nullptr) return;
  // The quota controller's per-tenant view, when the policy has one
  // (resolved once at construction).
  const TenantQuotaStatsSource* quota_stats = quota_stats_;
  std::vector<double> occupancies;
  std::vector<double> present_occupancies;
  std::vector<double> present_weights;
  for (uint32_t t = 0; t < tenant_source_->tenant_count(); ++t) {
    TenantState& state = tenant_states_[t];
    TenantResult tenant;
    tenant.name = tenant_source_->tenant_name(t);
    tenant.weight = tenant_source_->tenant_weight(t);
    tenant.ops = state.ops;
    tenant.accesses = state.accesses;
    tenant.fast_mem_accesses = state.fast_mem_accesses;
    tenant.slow_mem_accesses = state.slow_mem_accesses;
    tenant.throughput_mops =
        now_ == 0 ? 0.0
                  : static_cast<double>(state.ops) * 1000.0 /
                        static_cast<double>(now_);
    tenant.median_latency_ns = state.reservoir.Quantile(0.5);
    tenant.p99_latency_ns = state.reservoir.Quantile(0.99);
    tenant.mean_latency_ns = state.reservoir.Mean();

    const PageRange range = tenant_source_->tenant_units(t, config_.mode);
    tenant.footprint_units = range.size();
    tenant.fast_resident_units = memory_->RegionResident(t, Tier::kFast);
    tenant.occupancy_timeline = std::move(state.occupancy_timeline);
    tenant.latency_timeline = std::move(state.latency_timeline);

    if (quota_stats != nullptr) {
      TenantQuotaStats stats;
      if (quota_stats->GetTenantQuotaStats(t, &stats)) {
        tenant.quota_units = stats.quota_units;
        tenant.shadow_samples = stats.shadow_samples;
        tenant.marginal_utility = stats.marginal_utility;
      }
    }
    tenant.sample_period = budgeted_sampler_ != nullptr
                               ? budgeted_sampler_->period(t)
                               : config_.sample_period;

    occupancies.push_back(static_cast<double>(tenant.fast_resident_units));
    if (tenant_source_->tenant_active_at(t, now_)) {
      present_occupancies.push_back(
          static_cast<double>(tenant.fast_resident_units));
      present_weights.push_back(tenant.weight);
    }
    result_.tenants.push_back(std::move(tenant));
  }
  result_.jain_fairness = JainFairnessIndex(occupancies);
  result_.weighted_jain_fairness =
      WeightedJainFairnessIndex(present_occupancies, present_weights);
}

SimulationResult RunSimulation(const SimulationConfig& config,
                               Workload* workload, TieringPolicy* policy) {
  Simulation simulation(config, workload, policy);
  return simulation.Run();
}

}  // namespace hybridtier
