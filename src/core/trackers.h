#ifndef HYBRIDTIER_CORE_TRACKERS_H_
#define HYBRIDTIER_CORE_TRACKERS_H_

/**
 * @file
 * HybridTier's access trackers (paper §3.1, §4.2).
 *
 * An AccessTracker pairs a frequency estimator (blocked CBF by default;
 * standard CBF and an exact table are available for the paper's
 * ablations) with a sample-count-based cooling schedule. HybridTier
 * instantiates two:
 *  - the *frequency* tracker with a high cooling period C, capturing
 *    long-term hotness (order of minutes-to-hours);
 *  - the *momentum* tracker with a low C and a 128x smaller filter,
 *    capturing access intensity over seconds.
 */

#include <cstdint>
#include <memory>

#include "policies/policy.h"
#include "probstruct/blocked_cbf.h"
#include "probstruct/cbf.h"
#include "probstruct/estimator.h"
#include "probstruct/exact_table.h"
#include "probstruct/sizing.h"

namespace hybridtier {

/** Which estimator implementation backs a tracker. */
enum class EstimatorKind : uint8_t {
  kBlockedCbf = 0,  //!< Shipped design: one cache line per update.
  kStandardCbf = 1, //!< Fig 14 middle bar: k scattered lines per update.
  kExact = 2,       //!< Ground truth / Memtis-style dense table.
};

/** Display name of an estimator kind. */
const char* EstimatorKindName(EstimatorKind kind);

/** Configuration for one tracker. */
struct TrackerConfig {
  EstimatorKind kind = EstimatorKind::kBlockedCbf;
  CbfSizing sizing{.num_counters = 1024, .num_hashes = 4, .counter_bits = 4};
  uint64_t exact_units = 0;        //!< Table size when kind == kExact.
  uint64_t cooling_period_samples = 0;  //!< 0 disables cooling.
  uint64_t metadata_base = 1ULL << 44;  //!< Synthetic line address base.
  uint64_t seed = 1;
};

/** One estimator + cooling schedule + metadata-traffic reporting. */
class AccessTracker {
 public:
  explicit AccessTracker(const TrackerConfig& config);

  /**
   * Records one sampled access to `unit`, reporting the metadata lines
   * it touches to `sink`, and applies scheduled cooling. Returns the new
   * estimated count; when `old_count` is non-null it receives the
   * estimate from before the update (computed as part of the same
   * filter walk, so callers needing both pay one lookup, not two).
   */
  uint32_t RecordAccess(PageId unit, MetadataTrafficCounter& sink,
                        uint32_t* old_count = nullptr);

  /** Estimated count of `unit` (no traffic reported; simulator-internal
   *  reads during scans should use GetTracked instead). */
  uint32_t Get(PageId unit) const { return estimator_->Get(unit); }

  /** Estimated count, reporting the lookup's metadata lines to `sink`. */
  uint32_t GetTracked(PageId unit, MetadataTrafficCounter& sink) const;

  /** Largest representable count. */
  uint32_t max_count() const { return estimator_->max_count(); }

  /** Bytes of metadata backing this tracker. */
  size_t memory_bytes() const { return estimator_->memory_bytes(); }

  /** Cooling passes applied so far. */
  uint64_t coolings() const { return coolings_; }

  /** Samples recorded so far. */
  uint64_t samples() const { return samples_; }

  /** True if the last RecordAccess triggered a cooling pass. */
  bool cooled_on_last_record() const { return cooled_on_last_record_; }

  /** Underlying estimator (for accuracy studies). */
  const FrequencyEstimator& estimator() const { return *estimator_; }

  /** Clears counters and schedules. */
  void Reset();

 private:
  /** Replays one update's touched lines into the sink. */
  void TouchLines(PageId unit, MetadataTrafficCounter& sink) const;

  TrackerConfig config_;
  std::unique_ptr<FrequencyEstimator> estimator_;
  uint64_t samples_ = 0;
  uint64_t samples_at_last_cooling_ = 0;
  uint64_t coolings_ = 0;
  bool cooled_on_last_record_ = false;
  mutable std::vector<uint64_t> scratch_lines_;
};

/** Builds the estimator named by `kind` with the given sizing. */
std::unique_ptr<FrequencyEstimator> MakeEstimator(EstimatorKind kind,
                                                  const CbfSizing& sizing,
                                                  uint64_t exact_units,
                                                  uint64_t seed);

}  // namespace hybridtier

#endif  // HYBRIDTIER_CORE_TRACKERS_H_
