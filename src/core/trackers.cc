#include "core/trackers.h"

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

const char* EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kBlockedCbf:
      return "blocked-cbf";
    case EstimatorKind::kStandardCbf:
      return "standard-cbf";
    case EstimatorKind::kExact:
      return "exact";
  }
  return "unknown";
}

std::unique_ptr<FrequencyEstimator> MakeEstimator(EstimatorKind kind,
                                                  const CbfSizing& sizing,
                                                  uint64_t exact_units,
                                                  uint64_t seed) {
  switch (kind) {
    case EstimatorKind::kBlockedCbf:
      return std::make_unique<BlockedCountingBloomFilter>(sizing, seed);
    case EstimatorKind::kStandardCbf:
      return std::make_unique<CountingBloomFilter>(sizing, seed);
    case EstimatorKind::kExact:
      HT_ASSERT(exact_units > 0, "exact estimator needs a unit count");
      return std::make_unique<ExactCounterTable>(
          exact_units, (1u << sizing.counter_bits) - 1);
  }
  HT_PANIC("unreachable estimator kind");
}

AccessTracker::AccessTracker(const TrackerConfig& config)
    : config_(config),
      estimator_(MakeEstimator(config.kind, config.sizing,
                               config.exact_units, config.seed)) {}

void AccessTracker::TouchLines(PageId unit,
                               MetadataTrafficCounter& sink) const {
  scratch_lines_.clear();
  estimator_->AppendTouchedLines(unit, &scratch_lines_);
  for (const uint64_t line : scratch_lines_) {
    sink.Touch(config_.metadata_base + line * kCacheLineSize);
  }
}

uint32_t AccessTracker::RecordAccess(PageId unit,
                                     MetadataTrafficCounter& sink,
                                     uint32_t* old_count) {
  ++samples_;
  cooled_on_last_record_ = false;
  uint32_t scratch_old;
  uint32_t count = estimator_->IncrementWithOld(
      unit, old_count != nullptr ? old_count : &scratch_old);
  TouchLines(unit, sink);

  if (config_.cooling_period_samples != 0 &&
      samples_ - samples_at_last_cooling_ >=
          config_.cooling_period_samples) {
    samples_at_last_cooling_ = samples_;
    estimator_->CoolByHalving();
    ++coolings_;
    cooled_on_last_record_ = true;
    // Cooling rewrites the whole filter — one pass over its lines.
    const uint64_t lines = estimator_->memory_bytes() / kCacheLineSize;
    for (uint64_t line = 0; line < lines; ++line) {
      sink.Touch(config_.metadata_base + line * kCacheLineSize);
    }
    // The halving just rewrote this unit's counters too: re-read so the
    // caller thresholds on the post-cooling estimate, not a ~2x-stale one.
    count = estimator_->Get(unit);
  }
  return count;
}

uint32_t AccessTracker::GetTracked(PageId unit,
                                   MetadataTrafficCounter& sink) const {
  const uint32_t count = estimator_->Get(unit);
  TouchLines(unit, sink);
  return count;
}

void AccessTracker::Reset() {
  estimator_->Reset();
  samples_ = 0;
  samples_at_last_cooling_ = 0;
  coolings_ = 0;
  cooled_on_last_record_ = false;
}

}  // namespace hybridtier
