#include "core/policy_factory.h"

#include <algorithm>

#include "common/logging.h"
#include "policies/arc.h"
#include "policies/static_policy.h"
#include "policies/twoq.h"

namespace hybridtier {

const std::vector<std::string>& StandardPolicyNames() {
  static const std::vector<std::string> names = {
      "TPP", "AutoNUMA", "Memtis", "ARC", "TwoQ", "HybridTier"};
  return names;
}

bool IsPolicyName(const std::string& name) {
  static const std::vector<std::string> all = {
      "TPP",        "AutoNUMA",
      "Memtis",     "ARC",
      "TwoQ",       "HybridTier",
      "HybridTier-onlyFreq", "HybridTier-CBF",
      "HybridTier-exact",    "AllFast",
      "FirstTouch"};
  return std::find(all.begin(), all.end(), name) != all.end();
}

std::unique_ptr<TieringPolicy> MakePolicy(const std::string& name,
                                          const PolicyOptions& options) {
  if (name == "Memtis") {
    MemtisConfig config;
    config.cooling_period_samples = options.memtis_cooling_samples;
    config.promo_batch_samples = options.promo_batch_samples;
    return std::make_unique<MemtisPolicy>(config);
  }
  if (name == "AutoNUMA") {
    AutoNumaConfig config;
    config.promotion_latency_ns = options.autonuma_promotion_latency_ns;
    return std::make_unique<AutoNumaPolicy>(config);
  }
  if (name == "TPP") {
    TppConfig config;
    config.active_window_ns = options.tpp_active_window_ns;
    return std::make_unique<TppPolicy>(config);
  }
  if (name == "ARC") return std::make_unique<ArcPolicy>();
  if (name == "TwoQ") return std::make_unique<TwoQPolicy>();
  if (name == "AllFast") {
    return std::make_unique<StaticPolicy>(StaticKind::kAllFast);
  }
  if (name == "FirstTouch") {
    return std::make_unique<StaticPolicy>(StaticKind::kFirstTouch);
  }

  if (name.rfind("HybridTier", 0) == 0) {
    HybridTierConfig config;
    config.freq_cooling_samples = options.hybrid_freq_cooling_samples;
    config.momentum_cooling_samples =
        options.hybrid_momentum_cooling_samples;
    config.momentum_threshold = options.momentum_threshold;
    config.second_chance_revisit_ns = options.second_chance_revisit_ns;
    config.promo_batch_samples = options.promo_batch_samples;
    if (name == "HybridTier") {
      return std::make_unique<HybridTierPolicy>(config);
    }
    if (name == "HybridTier-onlyFreq") {
      config.use_momentum = false;
      return std::make_unique<HybridTierPolicy>(config);
    }
    if (name == "HybridTier-CBF") {
      config.estimator = EstimatorKind::kStandardCbf;
      return std::make_unique<HybridTierPolicy>(config);
    }
    if (name == "HybridTier-exact") {
      config.estimator = EstimatorKind::kExact;
      return std::make_unique<HybridTierPolicy>(config);
    }
  }
  HT_FATAL("unknown policy name '", name, "'");
}

AllocationPolicy AllocationPolicyFor(const std::string& name) {
  if (name == "ARC" || name == "TwoQ") return AllocationPolicy::kSlowOnly;
  return AllocationPolicy::kFastFirst;
}

double FastFractionFor(const std::string& name, double requested) {
  return name == "AllFast" ? 1.0 : requested;
}

}  // namespace hybridtier
