#ifndef HYBRIDTIER_CORE_POLICY_FACTORY_H_
#define HYBRIDTIER_CORE_POLICY_FACTORY_H_

/**
 * @file
 * Policy factory: builds any evaluated tiering system by name, with the
 * simulation-scaled defaults shared by tests, examples, and benches.
 *
 * Names: "TPP", "AutoNUMA", "Memtis", "ARC", "TwoQ", "HybridTier",
 * "HybridTier-onlyFreq", "HybridTier-CBF", "HybridTier-exact",
 * "AllFast", "FirstTouch".
 */

#include <memory>
#include <string>
#include <vector>

#include "core/hybridtier_policy.h"
#include "mem/tiered_memory.h"
#include "policies/autonuma.h"
#include "policies/memtis.h"
#include "policies/policy.h"
#include "policies/tpp.h"

namespace hybridtier {

/** Cross-policy scaled tunables (one knob set for a whole experiment). */
struct PolicyOptions {
  /** Memtis cooling period C in samples. */
  uint64_t memtis_cooling_samples = 150000;
  /** HybridTier frequency-tracker cooling period (high C). */
  uint64_t hybrid_freq_cooling_samples = 600000;
  /** HybridTier momentum-tracker cooling period (low C). */
  uint64_t hybrid_momentum_cooling_samples = 8000;
  /** HybridTier momentum threshold. */
  uint32_t momentum_threshold = 3;
  /** Second-chance revisit delay. */
  TimeNs second_chance_revisit_ns = 300 * kMillisecond;
  /** AutoNUMA hint-fault promotion latency threshold. */
  TimeNs autonuma_promotion_latency_ns = 20 * kMillisecond;
  /** TPP active-list window. */
  TimeNs tpp_active_window_ns = 100 * kMillisecond;
  /** Promotion batch, in samples, for batched policies. */
  uint64_t promo_batch_samples = 2048;
};

/** The six systems compared in the paper's headline figures. */
const std::vector<std::string>& StandardPolicyNames();

/** True if `name` names a known policy. */
bool IsPolicyName(const std::string& name);

/** Builds the policy `name`; fatal on unknown names. */
std::unique_ptr<TieringPolicy> MakePolicy(
    const std::string& name, const PolicyOptions& options = PolicyOptions{});

/**
 * First-touch allocation rule for `name`: ARC and TwoQ start with an
 * empty "cache" and therefore allocate new pages in the slow tier
 * (paper §5.2); everyone else uses Linux fast-first allocation.
 */
AllocationPolicy AllocationPolicyFor(const std::string& name);

/**
 * Fast-tier fraction override for `name`: the AllFast upper bound gets
 * the whole footprint; returns `requested` otherwise.
 */
double FastFractionFor(const std::string& name, double requested);

}  // namespace hybridtier

#endif  // HYBRIDTIER_CORE_POLICY_FACTORY_H_
