#ifndef HYBRIDTIER_CORE_SIMULATION_H_
#define HYBRIDTIER_CORE_SIMULATION_H_

/**
 * @file
 * The end-to-end simulation harness.
 *
 * Drives a Workload's access stream through the cache hierarchy, the
 * tiered memory + timing model, and the PEBS-analogue sampler, while a
 * TieringPolicy observes the streams and migrates pages. Virtual time
 * advances by each access's modeled latency; an operation's latency is
 * the sum of its accesses (plus a fixed software overhead), which is the
 * metric the paper reports.
 *
 * The harness is deterministic: same config + workload seed => identical
 * results.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/hierarchy.h"
#include "common/percentile.h"
#include "common/units.h"
#include "fault/fault_runtime.h"
#include "fault/watchdog.h"
#include "mem/migration.h"
#include "mem/page.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "obs/telemetry.h"
#include "policies/policy.h"
#include "sampling/budgeted_sampler.h"
#include "sampling/sampler.h"
#include "workloads/tenant_tag.h"
#include "workloads/workload.h"

namespace hybridtier {

class TenantQuotaStatsSource;

/** All knobs of one simulation run. */
struct SimulationConfig {
  PageMode mode = PageMode::kRegular;   //!< Tracking/migration granularity.
  /** Fast-tier capacity as a fraction of the footprint; the paper's
   *  "1:N" configuration maps to 1.0 / N. */
  double fast_tier_fraction = 1.0 / 8;
  AllocationPolicy allocation = AllocationPolicy::kFastFirst;
  uint64_t max_accesses = 20000000;     //!< Stop after this many accesses.
  uint64_t max_ops = 0;                 //!< 0 = unlimited.
  TimeNs max_time_ns = 0;               //!< 0 = unlimited.
  uint64_t warmup_accesses = 0;         //!< Reset measurement stats after.
  TimeNs op_overhead_ns = 60;           //!< Non-memory work per op.
  uint64_t sample_period = 61;          //!< PEBS period (accesses/sample).
  size_t sample_buffer = 8192;          //!< PEBS buffer depth.
  /**
   * Multi-tenant runs only: replace the single global sampler with the
   * per-tenant budgeted sampler (`BudgetedSampler`), which re-divides
   * the global sample budget equally among active tenants so a
   * high-access-rate tenant cannot crowd the sample stream that feeds
   * per-tenant demand estimators. Ignored for single-tenant workloads.
   *
   * On by default since the Fig 4-style single-hot-tenant sweep showed
   * per-tenant periods leave adaptation time unhurt (convergence within
   * the first 1 ms stats interval with the budget on and off, across
   * seeds) while the hot tenant's final occupancy and the weighted
   * fairness index come out equal or slightly better. Disable with
   * `ht_run --no-sampler-budget` / this flag for the legacy global
   * sampler.
   */
  bool tenant_sample_budget = true;
  /** Accesses between budgeted-sampler period re-adaptations. */
  uint64_t sample_adapt_window = 65536;
  TimeNs tick_interval_ns = 1 * kMillisecond;   //!< Policy maintenance.
  TimeNs stats_interval_ns = 20 * kMillisecond; //!< Timeline sampling.
  size_t latency_window = 4096;         //!< Window for timeline medians.
  /**
   * Capacity of each tenant's latency reservoir (whole-run percentile
   * estimate). The default matches the historical fixed size; fleet
   * benches shrink it — per-tenant state must stay a few KB when a
   * thousand tenants share one cell.
   */
  size_t tenant_reservoir = 16384;
  /**
   * Per-tenant metric probes are registered only for the K heaviest
   * tenants (ties broken by admission order); the rest roll up into a
   * single "tenant/other/" aggregate so `--metrics-out` stays readable
   * at fleet scale. 0 = no cap (a probe set per tenant, the historical
   * behavior). Only affects telemetry, never results or timelines.
   */
  uint32_t tenant_metrics_top_k = 16;
  HierarchyConfig cache;                //!< Cache geometry.
  PerfModelConfig perf;                 //!< Timing constants.
  /**
   * Slow-tier device topology spec (see mem/topology.h), e.g.
   * "cxl:(1,(2,3)),lat=124:180:180,bw=34:17:17,link=20". Empty (the
   * default) keeps the historical single-endpoint model on the exact
   * legacy construction path — bit-identical results, gated by the
   * golden determinism tests.
   */
  std::string topology;
  /**
   * Fault-injection schedule spec (see fault/fault_spec.h), e.g.
   * "faults:ep2@5s=down,ep1@2s-8s=degrade3x". Empty (the default)
   * constructs no fault runtime at all and keeps every run bit-identical
   * to the pre-fault code — the golden determinism tests gate on it.
   * Any `down`/`degrade` event force-enables `perf.bounded_queue` (with
   * a warning when it was off): an unbounded backlog integral across an
   * outage would model infinite recovery.
   */
  std::string faults;
  /**
   * Runs the invariant watchdog (fault/watchdog.h) at every stats
   * interval and at end of run; a violated invariant aborts the run
   * with the failed check's report. Pure observation — an enabled
   * watchdog never changes results, only whether a corrupt run is
   * allowed to finish.
   */
  bool watchdog = false;
  /** Failover behavior knobs (only read when `faults` is non-empty). */
  FaultRuntimeConfig fault_runtime;
  bool measure_metadata_traffic = true; //!< Replay metadata lines in LLC.
  /**
   * Batched access execution (default): policies that declare no
   * per-access interest are skipped in the hot loop, and batch-capable
   * policies receive one OnAccessBatch call per op instead of a virtual
   * OnAccess per access. `false` forces the legacy per-access dispatch
   * for every policy. The two paths produce bit-identical results —
   * batching only changes dispatch, never what a policy observes — and
   * the determinism suite gates on that equivalence.
   */
  bool batch_execution = true;
  /**
   * Touch the whole address space once (in address order) before the
   * access stream starts, modeling application initialization: real
   * workloads allocate and populate their heaps (cache slabs, graph
   * CSR, training matrices) before steady state, so first-touch
   * placement is address-ordered, not popularity-ordered.
   */
  bool prefault_at_start = true;
  uint64_t seed = 1;                    //!< Sampler jitter seed.
  /**
   * Optional telemetry sinks (metrics registry, trace emitter, stage
   * profiler, latency attribution, decision audit), all non-owning and
   * null by default. Metric and trace content is keyed to virtual time
   * and stays bit-identical across dispatch engines and sweep `--jobs`
   * values; the stage profiler is the one wall-clock exception (bench
   * reporting only) unless constructed in virtual-time mode, which
   * rejoins the deterministic set.
   */
  Telemetry telemetry;
};

/**
 * Per-tenant slice of a multi-tenant run. Produced when the workload
 * implements `TenantTagSource` (e.g. `MuxWorkload`); attribution is by
 * the tenant that generated each operation.
 */
struct TenantResult {
  std::string name;
  double weight = 1.0;               //!< Fair-share weight.
  uint64_t ops = 0;
  uint64_t accesses = 0;
  uint64_t fast_mem_accesses = 0;  //!< Demand fills served by fast tier.
  uint64_t slow_mem_accesses = 0;
  uint64_t fast_resident_units = 0;  //!< End-of-run fast-tier occupancy.
  uint64_t footprint_units = 0;      //!< Tenant region size in units.
  double throughput_mops = 0.0;      //!< Tenant ops per virtual us.
  double median_latency_ns = 0.0;    //!< Post-warmup op latency median.
  double p99_latency_ns = 0.0;
  double mean_latency_ns = 0.0;

  // Quota-controller view (zero unless the policy manages per-tenant
  // quotas, i.e. implements TenantQuotaStatsSource).
  uint64_t quota_units = 0;        //!< End-of-run fast-tier quota.
  uint64_t shadow_samples = 0;     //!< Samples fed to the ghost estimate.
  double marginal_utility = 0.0;   //!< Hits/window of the next fast unit.
  /** Effective sampling period for this tenant's accesses (the global
   *  period unless the budgeted sampler is enabled). */
  uint64_t sample_period = 0;

  // Per-tenant adaptation timelines, sampled every stats_interval_ns.
  TimeSeries occupancy_timeline;  //!< Fast units / fast capacity.
  TimeSeries latency_timeline;    //!< Windowed median op latency.

  /** Fraction of this tenant's demand fills served by the fast tier. */
  double FastAccessFraction() const {
    const uint64_t total = fast_mem_accesses + slow_mem_accesses;
    return total == 0 ? 0.0
                      : static_cast<double>(fast_mem_accesses) /
                            static_cast<double>(total);
  }

  /** Fraction of this tenant's region resident in the fast tier. */
  double FastResidentFraction() const {
    return footprint_units == 0
               ? 0.0
               : static_cast<double>(fast_resident_units) /
                     static_cast<double>(footprint_units);
  }
};

/** Everything a run produces. */
struct SimulationResult {
  // Volume.
  uint64_t ops = 0;
  uint64_t accesses = 0;
  TimeNs duration_ns = 0;
  TimeNs warmup_end_ns = 0;  //!< Virtual time when warmup ended.

  /** Post-warmup runtime (== duration_ns when no warmup configured). */
  TimeNs SteadyDurationNs() const { return duration_ns - warmup_end_ns; }

  // Headline performance.
  double throughput_mops = 0.0;    //!< Operations per virtual us.
  double median_latency_ns = 0.0;  //!< Whole-run op latency median.
  double p99_latency_ns = 0.0;
  double mean_latency_ns = 0.0;

  // Timelines (sampled every stats_interval_ns).
  TimeSeries latency_timeline;          //!< Windowed median op latency.
  /** Windowed p99 op latency — the failover bench's recovery series. */
  TimeSeries p99_timeline;
  TimeSeries tiering_l1_share_timeline; //!< Per-interval tiering L1 share.
  TimeSeries tiering_llc_share_timeline;
  TimeSeries fast_used_timeline;        //!< Fast-tier occupancy fraction.

  // Memory system.
  uint64_t fast_mem_accesses = 0;  //!< Demand fills served by fast tier.
  uint64_t slow_mem_accesses = 0;
  uint64_t hint_faults = 0;
  MigrationStats migration;
  /** Fault-layer counters (all zero when no fault spec was given). */
  FaultStats fault;

  // Cache attribution (post warmup).
  uint64_t l1_app_misses = 0;
  uint64_t l1_tiering_misses = 0;
  uint64_t llc_app_misses = 0;
  uint64_t llc_tiering_misses = 0;

  // Tiering metadata.
  size_t metadata_bytes = 0;
  uint64_t samples_taken = 0;
  uint64_t samples_dropped = 0;

  /**
   * Tenants visited by per-interval timeline accounting over the whole
   * run: present tenants plus departed ones still draining. The
   * O(active) guard test asserts this scales with the tenants actually
   * present, not the fleet size.
   */
  uint64_t stats_tenant_visits = 0;

  // Multi-tenant attribution (empty unless the workload is a
  // TenantTagSource).
  std::vector<TenantResult> tenants;
  /**
   * Jain fairness index over per-tenant fast-tier occupancy: how
   * equitably the shared capacity is divided (fill rates are workload-
   * intrinsic; occupancy is what a tiering policy actually allocates).
   * 1.0 for single-tenant runs.
   */
  double jain_fairness = 1.0;
  /**
   * Weight-normalized Jain fairness over occupancy / weight, scoring a
   * weighted split ("a:4,b:1") as fair when occupancies track weights.
   * Computed over the tenants present at end of run (departed tenants
   * hold nothing and would otherwise pin the index low forever).
   */
  double weighted_jain_fairness = 1.0;
  /**
   * The weighted index sampled every stats_interval_ns over the tenants
   * present at each instant — the churn-adaptation series a bench plots
   * to measure quota reconvergence after an arrival or departure.
   */
  TimeSeries weighted_fairness_timeline;

  /** Fraction of demand fills served by the fast tier. */
  double FastAccessFraction() const {
    const uint64_t total = fast_mem_accesses + slow_mem_accesses;
    return total == 0 ? 0.0
                      : static_cast<double>(fast_mem_accesses) /
                            static_cast<double>(total);
  }

  /** Tiering share of all L1 misses. */
  double TieringL1MissShare() const {
    const uint64_t total = l1_app_misses + l1_tiering_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(l1_tiering_misses) /
                            static_cast<double>(total);
  }

  /** Tiering share of all LLC misses. */
  double TieringLlcMissShare() const {
    const uint64_t total = llc_app_misses + llc_tiering_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(llc_tiering_misses) /
                            static_cast<double>(total);
  }
};

/** One wired-up simulation run. */
class Simulation {
 public:
  /**
   * @param config run parameters.
   * @param workload access generator (not owned; consumed statefully).
   * @param policy  tiering policy (not owned; bound to this run).
   */
  Simulation(const SimulationConfig& config, Workload* workload,
             TieringPolicy* policy);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /** Executes the run to its budget and returns the results. */
  SimulationResult Run();

  /** Tiered memory view (valid during and after Run). */
  const TieredMemory& memory() const { return *memory_; }

  /** Timing-model view: per-endpoint traffic and backlog counters. */
  const PerfModel& perf_model() const { return *perf_; }

  /** Fast-tier capacity in tracking units for this run. */
  uint64_t fast_capacity_units() const { return fast_capacity_units_; }

  /** Footprint in tracking units. */
  uint64_t footprint_units() const { return footprint_units_; }

 private:
  /** Per-tenant accumulators while the run is in flight. */
  struct TenantState {
    uint64_t ops = 0;
    uint64_t accesses = 0;
    uint64_t fast_mem_accesses = 0;
    uint64_t slow_mem_accesses = 0;
    ReservoirSampler reservoir;
    WindowedPercentile window;      //!< Recent op latencies (timeline).
    TimeSeries occupancy_timeline;  //!< Fast units / fast capacity.
    TimeSeries latency_timeline;    //!< Windowed median op latency.

    TenantState(uint64_t seed, size_t latency_window,
                size_t reservoir_capacity)
        : reservoir(reservoir_capacity, seed), window(latency_window) {}
  };

  /** One scheduled presence change (from TenantTagSource windows). */
  struct PresenceEdge {
    TimeNs at = 0;
    uint32_t tenant = 0;
    bool arrival = false;
  };

  /**
   * Applies presence edges up to `at`: arrivals join `present_`,
   * departures move to `draining_` (their occupancy is still reported
   * until the policy finishes releasing the region). O(1) when no edge
   * is due, so per-interval accounting never scans the whole fleet.
   */
  void AdvancePresence(TimeNs at);

  /**
   * Captures one timeline point stamped at scheduled sample time `at`.
   * `idle` marks points inside an all-idle churn gap (no op latency).
   */
  void RecordTimelinePoint(TimeNs at, bool idle = false);

  /** Fills result_.tenants / jain_fairness from the tenant states. */
  void FinalizeTenantResults();

  /**
   * Executes one non-empty op end to end: the access loop (touch, cache
   * probes, timing, sampling) as a tight inlined loop, policy dispatch
   * per `access_interest_`, the sample drain, due maintenance ticks,
   * migration-stall charging, and the op's latency accounting.
   *
   * Instantiated on a compile-time profiling flag so the common
   * (unprofiled) instantiation contains no wall-clock reads at all;
   * the profiled one runs only for the stage profiler's sampled ops.
   * Virtual-time stage profiling reuses the unprofiled instantiation:
   * the buckets are filled from already-computed simulated quantities
   * behind one predictable branch per op (see profile_virtual_op_).
   */
  template <bool kProfiled>
  void RunOpImpl(const OpTrace& op, TenantState* tenant);

  /** Registers metric probes and trace tracks from config_.telemetry. */
  void SetupTelemetry();

  /** Emits period_adapt instants for tenants whose budgeted-sampler
   *  period changed since the last stats interval. */
  void EmitSamplerAdaptEvents(TimeNs at);

  /**
   * Replays metadata lines buffered in `metadata_counter_` into the
   * shared hierarchy, in report order, and clears the buffer. Called at
   * every boundary between policy execution and the next cache-state
   * observer (app access or stats read), so the modeled LLC sees the
   * same access sequence the legacy immediate-replay sink produced.
   */
  void FlushMetadataTraffic();

  SimulationConfig config_;
  Workload* workload_;
  TieringPolicy* policy_;
  TenantTagSource* tenant_source_ = nullptr;  //!< Null = single tenant.
  std::vector<TenantState> tenant_states_;

  uint64_t footprint_units_ = 0;
  uint64_t fast_capacity_units_ = 0;

  std::unique_ptr<TieredMemory> memory_;
  std::unique_ptr<PerfModel> perf_;
  std::unique_ptr<CacheHierarchy> hierarchy_;
  std::unique_ptr<MigrationEngine> migration_;
  std::unique_ptr<AccessSampler> sampler_;
  /** Replaces sampler_ when tenant_sample_budget is on (tenant runs). */
  std::unique_ptr<BudgetedSampler> budgeted_sampler_;
  /** Null unless config.faults is non-empty (the common case). */
  std::unique_ptr<FaultRuntime> fault_runtime_;
  /** Null unless config.watchdog (pure observation when present). */
  std::unique_ptr<InvariantWatchdog> watchdog_;
  /** Mirrors fault_runtime_ != nullptr; hot-loop guard. */
  bool faults_on_ = false;
  MetadataTrafficCounter metadata_counter_;

  // Run state.
  TimeNs now_ = 0;
  uint64_t ops_ = 0;
  uint64_t accesses_ = 0;
  SimulationResult result_;
  WindowedPercentile window_;
  ReservoirSampler reservoir_;
  /** Effective dispatch mode (policy interest, or kInline when
   *  batch_execution is off). */
  AccessInterest access_interest_ = AccessInterest::kInline;
  std::vector<TouchEvent> access_events_;   //!< Per-op batch buffer.
  std::vector<SampleRecord> sample_buffer_; //!< Per-op drain buffer.
  TimeNs next_tick_ = 0;
  TimeNs next_stats_ = 0;

  // O(active) per-tenant accounting: the presence schedule derived from
  // the workload's residency windows, the tenants currently present
  // (sorted by id, so floating-point reductions keep the historical
  // id-order evaluation), and departed tenants still draining.
  std::vector<PresenceEdge> presence_edges_;
  size_t presence_cursor_ = 0;
  std::vector<uint32_t> present_;   //!< Present tenant ids, ascending.
  std::vector<uint32_t> draining_;  //!< Departed, region not yet empty.
  std::vector<double> scratch_shares_;   //!< Per-interval, present-sized.
  std::vector<double> scratch_weights_;

  // Migration-stall accounting (TLB shootdowns hit the app cores).
  uint64_t last_migration_batches_ = 0;
  uint64_t last_migration_pages_ = 0;

  // Interval bookkeeping for miss-share timelines.
  uint64_t last_l1_app_misses_ = 0;
  uint64_t last_l1_tiering_misses_ = 0;
  uint64_t last_llc_app_misses_ = 0;
  uint64_t last_llc_tiering_misses_ = 0;

  // Telemetry (all null/empty when disabled; see SetupTelemetry).
  MetricRegistry* metrics_ = nullptr;
  TraceEmitter* trace_ = nullptr;
  StageProfiler* stages_ = nullptr;
  LatencyAttribution* attr_ = nullptr;
  DecisionAudit* audit_ = nullptr;
  /** True while the current op is a virtual-time profiling sample:
   *  RunOpImpl fills the stage buckets from simulated quantities it has
   *  already computed (think time, access latencies, TLB stalls, op
   *  overhead) instead of wall-clock reads. */
  bool profile_virtual_op_ = false;
  HistogramMetric* op_latency_hist_ = nullptr;  //!< Owned by metrics_.
  /** Per-endpoint slow-fill queue-delay histograms (owned by metrics_;
   *  empty when telemetry is off — one emptiness check per slow fill). */
  std::vector<HistogramMetric*> endpoint_queue_hist_;
  /** Quota-stats view of policy_, resolved once (also used by
   *  FinalizeTenantResults). */
  const TenantQuotaStatsSource* quota_stats_ = nullptr;
  TraceEmitter::TrackId sampler_track_ = 0;
  std::vector<uint64_t> last_periods_;  //!< Per-tenant, for adapt events.
};

/** Convenience wrapper: construct, run, return. */
SimulationResult RunSimulation(const SimulationConfig& config,
                               Workload* workload, TieringPolicy* policy);

}  // namespace hybridtier

#endif  // HYBRIDTIER_CORE_SIMULATION_H_
