#include "fault/health.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace hybridtier {
namespace {

// Flap windows expand one interval per down slot; cap the slot count so
// a pathological spec (1 ns period over 10 s) cannot eat memory.
constexpr uint64_t kMaxFlapSlots = 1 << 20;

}  // namespace

const char* EndpointHealthName(EndpointHealth state) {
  switch (state) {
    case EndpointHealth::kHealthy:
      return "healthy";
    case EndpointHealth::kDegraded:
      return "degraded";
    case EndpointHealth::kDown:
      return "down";
    case EndpointHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

HealthTracker::HealthTracker(const FaultSchedule& schedule,
                             uint32_t endpoint_count, TimeNs recovery_ns,
                             double recovery_factor)
    : states_(endpoint_count, EndpointHealth::kHealthy),
      factors_(endpoint_count, 1.0) {
  auto add_down = [&](uint32_t endpoint, TimeNs start, TimeNs end) {
    intervals_.push_back(
        {endpoint, start, end, EndpointHealth::kDown, 1.0});
    if (end != 0 && recovery_ns > 0) {
      intervals_.push_back({endpoint, end, end + recovery_ns,
                            EndpointHealth::kRecovering, recovery_factor});
    }
  };

  for (const FaultEvent& event : schedule.events) {
    HT_ASSERT(event.endpoint < endpoint_count,
              "fault event endpoint out of range");
    switch (event.kind) {
      case FaultKind::kDown:
        add_down(event.endpoint, event.start_ns, event.end_ns);
        break;
      case FaultKind::kDegrade:
        intervals_.push_back({event.endpoint, event.start_ns, event.end_ns,
                              EndpointHealth::kDegraded, event.factor});
        break;
      case FaultKind::kFlap: {
        // Pre-expand the flap window into concrete down runs: walk the
        // slots, flip the seeded coin per slot, and merge consecutive
        // down slots into one interval (with one recovery tail each).
        const uint64_t slots = std::min<uint64_t>(
            (event.end_ns - event.start_ns + event.flap_period_ns - 1) /
                event.flap_period_ns,
            kMaxFlapSlots);
        uint64_t run_start = 0;
        bool in_run = false;
        for (uint64_t slot = 0; slot < slots; ++slot) {
          const bool down =
              FlapSlotDown(event.endpoint, slot, event.flap_p);
          if (down && !in_run) {
            in_run = true;
            run_start = slot;
          } else if (!down && in_run) {
            in_run = false;
            add_down(event.endpoint,
                     event.start_ns + run_start * event.flap_period_ns,
                     std::min(event.end_ns,
                              event.start_ns + slot * event.flap_period_ns));
          }
        }
        if (in_run) {
          add_down(event.endpoint,
                   event.start_ns + run_start * event.flap_period_ns,
                   event.end_ns);
        }
        break;
      }
    }
  }

  // One edge per interval boundary; Resolve() recomputes state there.
  edges_.reserve(intervals_.size() * 2);
  for (const Interval& interval : intervals_) {
    edges_.push_back({interval.start_ns, interval.endpoint});
    if (interval.end_ns != 0) edges_.push_back({interval.end_ns, interval.endpoint});
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.endpoint < b.endpoint;
  });
}

void HealthTracker::Resolve(uint32_t endpoint, TimeNs now,
                            EndpointHealth* state, double* factor) const {
  EndpointHealth best = EndpointHealth::kHealthy;
  double best_factor = 1.0;
  for (const Interval& interval : intervals_) {
    if (interval.endpoint != endpoint) continue;
    if (now < interval.start_ns) continue;
    if (interval.end_ns != 0 && now >= interval.end_ns) continue;
    // Priority: down > degraded > recovering > healthy.
    auto rank = [](EndpointHealth s) {
      switch (s) {
        case EndpointHealth::kDown:
          return 3;
        case EndpointHealth::kDegraded:
          return 2;
        case EndpointHealth::kRecovering:
          return 1;
        case EndpointHealth::kHealthy:
          return 0;
      }
      return 0;
    };
    if (rank(interval.state) > rank(best)) {
      best = interval.state;
      best_factor = interval.factor;
    } else if (interval.state == best && interval.factor > best_factor) {
      best_factor = interval.factor;
    }
  }
  *state = best;
  *factor = best == EndpointHealth::kDown ? 1.0 : best_factor;
}

void HealthTracker::Advance(
    TimeNs now, const std::function<void(uint32_t, EndpointHealth,
                                         EndpointHealth, double)>& fn) {
  while (next_edge_ < edges_.size() && edges_[next_edge_].at_ns <= now) {
    const Edge& edge = edges_[next_edge_];
    ++next_edge_;
    EndpointHealth state;
    double factor;
    Resolve(edge.endpoint, edge.at_ns, &state, &factor);
    if (state != states_[edge.endpoint] ||
        factor != factors_[edge.endpoint]) {
      const EndpointHealth old_state = states_[edge.endpoint];
      states_[edge.endpoint] = state;
      factors_[edge.endpoint] = factor;
      fn(edge.endpoint, old_state, state, factor);
    }
  }
}

TimeNs HealthTracker::NextEdge() const {
  if (next_edge_ >= edges_.size()) {
    return std::numeric_limits<TimeNs>::max();
  }
  return edges_[next_edge_].at_ns;
}

}  // namespace hybridtier
