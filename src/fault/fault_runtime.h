#ifndef HYBRIDTIER_FAULT_FAULT_RUNTIME_H_
#define HYBRIDTIER_FAULT_FAULT_RUNTIME_H_

/**
 * @file
 * The fault-injection runtime: applies a fault schedule to the live
 * simulation and degrades service gracefully instead of falling over.
 *
 * `FaultRuntime::Advance(now)` runs at every tick boundary:
 *
 *  1. **Transitions.** Health edges from the `HealthTracker` are applied
 *     to the timing model (`PerfModel::SetEndpointDown/Degrade`), the
 *     migration engine (demotions onto dead devices are rejected), and
 *     the policy (`TieringPolicy::OnEndpointHealth` — the fair-share
 *     water-filler re-plans over effective capacity).
 *
 *  2. **Evacuation.** While an endpoint is down, its slow-resident
 *     pages are promoted off it in bounded batches (`evac_batch` per
 *     tick, paced like PR 4's departure reclaim so a dying 100k-page
 *     device doesn't stall the world for one giant batch). The stripe
 *     walk exploits the HDM decode — endpoint E's pages live in stripes
 *     `[(k*N+E)*gran, +gran)` — so each batch scans only the dying
 *     device's address ranges. When the fast tier is full, fast pages
 *     homed on *healthy* endpoints are demoted first (`fault_spill`
 *     reason) to make room; if even spill cannot free a unit (every
 *     other device also down, or no spill-eligible pages), the batch is
 *     retried with exponential backoff (`retry_backoff_ns` doubling to
 *     `max_backoff_ns`) instead of spinning every tick.
 *
 * All movement goes through the normal `MigrationEngine` with the new
 * `MigrationReason::{kFaultEvacuation,kFaultSpill}` codes, so costs,
 * audit records, and trace spans come out of the existing machinery.
 * Everything is a pure function of the schedule and the simulated
 * stream: fault runs are bit-identical across reruns and `--jobs`.
 *
 * Capacity bound: HDM decode pins each page's slow-tier home, so a page
 * homed on a dead device can live nowhere but the fast tier. A full
 * drain therefore requires the dead endpoint's homed footprint
 * (~footprint/N units) to fit in fast; when it does not, the runtime
 * evacuates until the fast tier is entirely dead-homed pages, then
 * parks in backoff — the surviving stragglers pay the fault stall on
 * access, which is the graceful-degradation floor, not a bug.
 */

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "fault/fault_spec.h"
#include "fault/health.h"
#include "mem/migration.h"
#include "mem/perf_model.h"
#include "mem/tiered_memory.h"
#include "obs/trace.h"
#include "policies/policy.h"

namespace hybridtier {

/** Degradation-handling knobs (defaults suit the standard cells). */
struct FaultRuntimeConfig {
  /** Pull residents off down endpoints (off = naive baseline: pages
   *  strand on the dead device and every touch pays the fault stall). */
  bool evacuate = true;
  uint32_t evac_batch = 512;    //!< Max pages evacuated per tick.
  uint32_t spill_batch = 512;   //!< Max pages spilled per tick.
  TimeNs retry_backoff_ns = 1 * kMillisecond;   //!< First retry delay.
  TimeNs max_backoff_ns = 64 * kMillisecond;    //!< Backoff cap.
  TimeNs recovery_ns = 10 * kMillisecond;       //!< Recovering window.
  double recovery_degrade = 2.0;  //!< Service factor while recovering.
};

/** Cumulative fault-handling counters (reported in SimulationResult). */
struct FaultStats {
  uint64_t transitions = 0;        //!< Health-state edges applied.
  uint64_t endpoints_downed = 0;   //!< Transitions into kDown.
  uint64_t endpoints_recovered = 0;  //!< Transitions out of kDown.
  uint64_t stalled_accesses = 0;   //!< Demand accesses hitting a down EP.
  uint64_t evacuated_pages = 0;    //!< Pages promoted off down EPs.
  uint64_t spilled_pages = 0;      //!< Fast pages demoted to make room.
  uint64_t evac_retries = 0;       //!< Batches deferred by backoff.
};

class FaultRuntime {
 public:
  /** All pointers borrowed; `policy`/`trace` may be null. */
  FaultRuntime(const FaultSchedule& schedule,
               const FaultRuntimeConfig& config, TieredMemory* memory,
               PerfModel* perf, MigrationEngine* migration,
               TieringPolicy* policy, TraceEmitter* trace);

  /**
   * Applies every health edge with time <= `now`, then runs one paced
   * evacuation round. Called at tick boundaries (and once at t=0 so
   * schedules starting at 0 take effect before the first op).
   */
  void Advance(TimeNs now);

  /** Current health of `endpoint`. */
  EndpointHealth state(uint32_t endpoint) const {
    return health_.state(endpoint);
  }

  /** True while any endpoint is down. */
  bool AnyDown() const;

  /** True once every scheduled edge has been applied and no down
   *  endpoint still has residents to evacuate. */
  bool Quiesced() const;

  /**
   * Counters so far. `stalled_accesses` is pulled from the timing
   * model at call time (the hot path counts stalls where they happen).
   */
  FaultStats stats() const;

 private:
  // Paced evacuation state for one down endpoint.
  struct Evacuation {
    bool active = false;
    uint64_t stripe = 0;      //!< Resume stripe index (k in (k*N+e)*g).
    TimeNs backoff_ns = 0;    //!< Current retry delay.
    TimeNs retry_at_ns = 0;   //!< Next attempt time while backing off.
  };

  void ApplyTransition(uint32_t endpoint, EndpointHealth old_state,
                       EndpointHealth new_state, double factor, TimeNs now);
  void RunEvacuation(uint32_t endpoint, Evacuation& evac, TimeNs now);
  /** Demotes up to `needed` healthy-homed fast pages; returns demoted. */
  uint64_t Spill(uint64_t needed, TimeNs now);

  HealthTracker health_;
  FaultRuntimeConfig config_;
  TieredMemory* memory_;
  PerfModel* perf_;
  MigrationEngine* migration_;
  TieringPolicy* policy_;
  TraceEmitter* trace_;
  TraceEmitter::TrackId trace_track_ = 0;
  std::vector<Evacuation> evacuations_;  //!< One slot per endpoint.
  uint64_t spill_cursor_ = 0;            //!< Fast-victim scan resume.
  FaultStats stats_;
  std::vector<PageId> batch_;            //!< Scratch (reused per round).
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_FAULT_FAULT_RUNTIME_H_
