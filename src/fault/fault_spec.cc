#include "fault/fault_spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "common/spec_error.h"
#include "mem/topology.h"

namespace hybridtier {
namespace {

constexpr char kPrefix[] = "faults:";
constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
constexpr char kChaosPrefix[] = "chaos(";

// Fixed mixing constant for the flap coin so flap behaviour is a pure
// function of (endpoint, slot, p) — independent of any run seed.
constexpr uint64_t kFlapSalt = 0x8f1c7a44d20b39e5ULL;

// Chaos expansion bounds: generated events land on a coarse grid so the
// canonical spec stays readable and the horizon is never exceeded.
constexpr uint32_t kChaosMaxEvents = 256;

struct Cursor {
  const std::string& spec;
  size_t pos = 0;  // Byte offset into `spec`.
};

/** The comma-separated token starting at `cursor.pos` (for errors). */
std::string TokenAt(const Cursor& cursor) {
  size_t end = cursor.spec.find(',', cursor.pos);
  if (end == std::string::npos) end = cursor.spec.size();
  return cursor.spec.substr(cursor.pos, end - cursor.pos);
}

[[noreturn]] void Fail(const Cursor& cursor, const std::string& message) {
  SpecFatal(cursor.spec, cursor.pos, TokenAt(cursor), message);
}

bool ConsumeLiteral(Cursor& cursor, const char* literal) {
  const size_t len = std::char_traits<char>::length(literal);
  if (cursor.spec.compare(cursor.pos, len, literal) != 0) return false;
  cursor.pos += len;
  return true;
}

/** Parses a non-negative decimal number (digits, optional fraction). */
double ParseNumber(Cursor& cursor, const char* what) {
  const size_t start = cursor.pos;
  size_t p = cursor.pos;
  while (p < cursor.spec.size() &&
         (std::isdigit(static_cast<unsigned char>(cursor.spec[p])) ||
          cursor.spec[p] == '.')) {
    ++p;
  }
  if (p == start) Fail(cursor, std::string("expected ") + what);
  errno = 0;
  char* parse_end = nullptr;
  const std::string digits = cursor.spec.substr(start, p - start);
  const double value = std::strtod(digits.c_str(), &parse_end);
  if (errno != 0 || parse_end != digits.c_str() + digits.size() ||
      !std::isfinite(value)) {
    Fail(cursor, std::string("malformed ") + what);
  }
  cursor.pos = p;
  return value;
}

/** Parses a duration/instant: number plus optional ns/us/ms/s suffix. */
TimeNs ParseTime(Cursor& cursor, const char* what) {
  const double raw = ParseNumber(cursor, what);
  double scale = 1.0;
  if (ConsumeLiteral(cursor, "ns")) {
    scale = 1.0;
  } else if (ConsumeLiteral(cursor, "us")) {
    scale = 1e3;
  } else if (ConsumeLiteral(cursor, "ms")) {
    scale = 1e6;
  } else if (ConsumeLiteral(cursor, "s")) {
    scale = 1e9;
  }
  const double ns = raw * scale;
  if (ns > 9.0e18) Fail(cursor, std::string(what) + " overflows TimeNs");
  return static_cast<TimeNs>(ns);
}

uint32_t ParseEndpointIndex(Cursor& cursor) {
  const double value = ParseNumber(cursor, "endpoint index");
  const uint32_t endpoint = static_cast<uint32_t>(value);
  if (value != static_cast<double>(endpoint) ||
      endpoint >= kMaxTopologyEndpoints) {
    Fail(cursor, "endpoint index must be an integer below " +
                     std::to_string(kMaxTopologyEndpoints));
  }
  return endpoint;
}

/** Parses one `ep<N>@<start>[-<end>]=<kind>` event token. */
FaultEvent ParseEvent(Cursor& cursor) {
  const Cursor token_start = cursor;
  FaultEvent event;
  if (!ConsumeLiteral(cursor, "ep")) {
    Fail(token_start, "expected 'ep<N>@...' event");
  }
  event.endpoint = ParseEndpointIndex(cursor);
  if (!ConsumeLiteral(cursor, "@")) {
    Fail(token_start, "expected '@<start>' after endpoint index");
  }
  event.start_ns = ParseTime(cursor, "start time");
  if (ConsumeLiteral(cursor, "-")) {
    event.end_ns = ParseTime(cursor, "end time");
    if (event.end_ns <= event.start_ns) {
      Fail(token_start, "end time must be after start time");
    }
  }
  if (!ConsumeLiteral(cursor, "=")) {
    Fail(token_start, "expected '=<down|degrade<F>x|flap(...)>'");
  }
  if (ConsumeLiteral(cursor, "down")) {
    event.kind = FaultKind::kDown;
  } else if (ConsumeLiteral(cursor, "degrade")) {
    event.kind = FaultKind::kDegrade;
    event.factor = ParseNumber(cursor, "degrade factor");
    if (!ConsumeLiteral(cursor, "x")) {
      Fail(token_start, "degrade factor must end in 'x' (e.g. degrade3x)");
    }
    if (event.factor <= 1.0) {
      Fail(token_start, "degrade factor must be > 1");
    }
  } else if (ConsumeLiteral(cursor, "flap(p=")) {
    event.kind = FaultKind::kFlap;
    event.flap_p = ParseNumber(cursor, "flap probability");
    if (event.flap_p <= 0.0 || event.flap_p > 1.0) {
      Fail(token_start, "flap probability must be in (0, 1]");
    }
    if (!ConsumeLiteral(cursor, ",period=")) {
      Fail(token_start, "expected ',period=<T>' in flap(...)");
    }
    event.flap_period_ns = ParseTime(cursor, "flap period");
    if (event.flap_period_ns == 0) {
      Fail(token_start, "flap period must be positive");
    }
    if (!ConsumeLiteral(cursor, ")")) {
      Fail(token_start, "expected ')' closing flap(...)");
    }
    if (event.end_ns == 0) {
      Fail(token_start, "flap events require an end time (ep<N>@a-b=flap)");
    }
  } else {
    Fail(token_start, "unknown fault kind (want down, degrade<F>x, or flap)");
  }
  return event;
}

void CanonicalizeOrder(FaultSchedule& schedule) {
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.endpoint < b.endpoint;
                   });
}

/**
 * Expands `chaos(seed=,endpoints=,horizon=,events=)` into concrete
 * down/degrade events from a SplitMix64 stream over the seed. Each
 * generated event picks an endpoint, a kind (2/3 down, 1/3 degrade),
 * a start in [horizon/8, 3*horizon/4) and a duration in
 * [horizon/64, horizon/4), all quantised to a horizon/1024 grid so the
 * canonical form stays compact. Purely a function of the four knobs.
 */
FaultSchedule ExpandChaos(Cursor& cursor) {
  const Cursor token_start = cursor;
  if (!ConsumeLiteral(cursor, "chaos(seed=")) {
    Fail(token_start, "expected chaos(seed=...)");
  }
  const double seed_value = ParseNumber(cursor, "chaos seed");
  if (!ConsumeLiteral(cursor, ",endpoints=")) {
    Fail(token_start, "expected ',endpoints=<N>' in chaos(...)");
  }
  const double endpoints_value = ParseNumber(cursor, "chaos endpoint count");
  if (!ConsumeLiteral(cursor, ",horizon=")) {
    Fail(token_start, "expected ',horizon=<T>' in chaos(...)");
  }
  const TimeNs horizon = ParseTime(cursor, "chaos horizon");
  if (!ConsumeLiteral(cursor, ",events=")) {
    Fail(token_start, "expected ',events=<N>' in chaos(...)");
  }
  const double events_value = ParseNumber(cursor, "chaos event count");
  if (!ConsumeLiteral(cursor, ")")) {
    Fail(token_start, "expected ')' closing chaos(...)");
  }
  if (cursor.pos != cursor.spec.size()) {
    Fail(cursor, "chaos(...) must be the whole schedule");
  }

  const uint32_t endpoints = static_cast<uint32_t>(endpoints_value);
  const uint32_t events = static_cast<uint32_t>(events_value);
  if (endpoints_value != static_cast<double>(endpoints) || endpoints == 0 ||
      endpoints > kMaxTopologyEndpoints) {
    Fail(token_start, "chaos endpoints must be an integer in [1, " +
                          std::to_string(kMaxTopologyEndpoints) + "]");
  }
  if (events_value != static_cast<double>(events) || events == 0 ||
      events > kChaosMaxEvents) {
    Fail(token_start, "chaos events must be an integer in [1, " +
                          std::to_string(kChaosMaxEvents) + "]");
  }
  if (horizon < 1024) {
    Fail(token_start, "chaos horizon must be at least 1024 ns");
  }

  uint64_t state = static_cast<uint64_t>(seed_value) ^ 0x66a1c0fdecafULL;
  const TimeNs grid = horizon / 1024;
  FaultSchedule schedule;
  schedule.events.reserve(events);
  for (uint32_t i = 0; i < events; ++i) {
    FaultEvent event;
    event.endpoint =
        static_cast<uint32_t>(SplitMix64Next(state) % endpoints);
    const TimeNs start_lo = horizon / 8;
    const TimeNs start_span = (3 * horizon / 4) - start_lo;
    event.start_ns =
        start_lo + (SplitMix64Next(state) % start_span) / grid * grid;
    const TimeNs dur_lo = horizon / 64;
    const TimeNs dur_span = (horizon / 4) - dur_lo;
    TimeNs duration =
        dur_lo + (SplitMix64Next(state) % dur_span) / grid * grid;
    if (duration == 0) duration = grid > 0 ? grid : 1;
    event.end_ns = event.start_ns + duration;
    if (SplitMix64Next(state) % 3 == 0) {
      event.kind = FaultKind::kDegrade;
      event.factor =
          2.0 + static_cast<double>(SplitMix64Next(state) % 7);  // 2x..8x
    } else {
      event.kind = FaultKind::kDown;
    }
    schedule.events.push_back(event);
  }
  CanonicalizeOrder(schedule);
  return schedule;
}

void AppendTime(std::string& out, TimeNs t) { out += std::to_string(t); }

void AppendDouble(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  out += buffer;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDown:
      return "down";
    case FaultKind::kDegrade:
      return "degrade";
    case FaultKind::kFlap:
      return "flap";
  }
  return "unknown";
}

uint32_t FaultSchedule::MaxEndpoint() const {
  uint32_t max_endpoint = 0;
  for (const FaultEvent& event : events) {
    max_endpoint = std::max(max_endpoint, event.endpoint);
  }
  return max_endpoint;
}

bool IsFaultSpec(const std::string& text) {
  return text.compare(0, kPrefixLen, kPrefix) == 0;
}

FaultSchedule ParseFaultSpec(const std::string& text) {
  Cursor cursor{text, 0};
  if (!ConsumeLiteral(cursor, kPrefix)) {
    Fail(cursor, "fault spec must start with 'faults:'");
  }
  if (cursor.pos == text.size()) {
    Fail(cursor, "empty fault schedule (omit the flag for no faults)");
  }
  if (text.compare(cursor.pos, sizeof(kChaosPrefix) - 1, kChaosPrefix) == 0) {
    return ExpandChaos(cursor);
  }
  FaultSchedule schedule;
  for (;;) {
    schedule.events.push_back(ParseEvent(cursor));
    if (cursor.pos == text.size()) break;
    if (!ConsumeLiteral(cursor, ",")) {
      Fail(cursor, "expected ',' between fault events");
    }
    if (cursor.pos == text.size()) {
      Fail(cursor, "trailing ',' in fault schedule");
    }
  }
  CanonicalizeOrder(schedule);
  return schedule;
}

std::string FormatFaultSpec(const FaultSchedule& schedule) {
  std::string out = kPrefix;
  bool first = true;
  for (const FaultEvent& event : schedule.events) {
    if (!first) out += ',';
    first = false;
    out += "ep";
    out += std::to_string(event.endpoint);
    out += '@';
    AppendTime(out, event.start_ns);
    if (event.end_ns != 0) {
      out += '-';
      AppendTime(out, event.end_ns);
    }
    out += '=';
    switch (event.kind) {
      case FaultKind::kDown:
        out += "down";
        break;
      case FaultKind::kDegrade:
        out += "degrade";
        AppendDouble(out, event.factor);
        out += 'x';
        break;
      case FaultKind::kFlap:
        out += "flap(p=";
        AppendDouble(out, event.flap_p);
        out += ",period=";
        AppendTime(out, event.flap_period_ns);
        out += ')';
        break;
    }
  }
  return out;
}

bool FlapSlotDown(uint32_t endpoint, uint64_t slot, double p) {
  uint64_t state = kFlapSalt ^ (static_cast<uint64_t>(endpoint) << 32) ^ slot;
  const uint64_t draw = SplitMix64Next(state);
  const double unit = static_cast<double>(draw >> 11) * 0x1.0p-53;
  return unit < p;
}

}  // namespace hybridtier
