#ifndef HYBRIDTIER_FAULT_WATCHDOG_H_
#define HYBRIDTIER_FAULT_WATCHDOG_H_

/**
 * @file
 * Opt-in runtime invariant checking.
 *
 * The simulator's accounting is all incremental — residency counters,
 * per-endpoint mirrors, region tallies, quota occupancy, the exact
 * latency decomposition — and a fault layer that migrates pages from
 * outside the policy is exactly the kind of code that desynchronizes
 * incremental mirrors. `InvariantWatchdog` recounts the ground truth
 * (an O(footprint) flag scan) and cross-checks every derived counter at
 * each stats interval, so a bookkeeping bug fails the run at the
 * interval it happens instead of surfacing as a subtly wrong figure.
 *
 * Built-in checks (all against a fresh recount of the page flags):
 *  - per-tier used counts and used <= capacity;
 *  - per-endpoint slow-resident and fast-resident-by-home mirrors;
 *  - per-region residency tallies (when regions are defined);
 *  - the attribution identity Σ components == Σ op latency (when a
 *    `LatencyAttribution` is attached).
 * Components can register extra checks: `RegisterCheck` for ad-hoc
 * lambdas, or implement `InvariantSource` (the fair-share policy does,
 * validating quota/occupancy consistency) and register that.
 *
 * Pure observation: checks read state, never mutate it, so an enabled
 * watchdog cannot change results — only abort on corruption.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/units.h"
#include "mem/tiered_memory.h"
#include "obs/attribution.h"

namespace hybridtier {

/**
 * Implemented by components with internal accounting worth validating.
 * Return false and fill `*error` with a human-readable description when
 * an invariant does not hold.
 */
struct InvariantSource {
  virtual ~InvariantSource() = default;
  virtual bool CheckInvariants(std::string* error) const = 0;
};

class InvariantWatchdog {
 public:
  /** `attribution` may be null (identity check skipped). */
  explicit InvariantWatchdog(const TieredMemory* memory,
                             const LatencyAttribution* attribution = nullptr);

  /** Adds a named ad-hoc check. */
  void RegisterCheck(const std::string& name,
                     std::function<bool(std::string*)> check);

  /** Adds every check of `source` under `name` (borrowed pointer). */
  void RegisterSource(const std::string& name, const InvariantSource* source);

  /**
   * Runs every check once at virtual time `now`. Returns true when all
   * invariants hold; on failure `last_error()` names the first violated
   * check and `violations()` counts all of them.
   */
  bool RunChecks(TimeNs now);

  /** Checks executed so far (across all RunChecks calls). */
  uint64_t checks_run() const { return checks_run_; }

  /** Failed checks so far. */
  uint64_t violations() const { return violations_; }

  /** Description of the most recent violation ("" when clean). */
  const std::string& last_error() const { return last_error_; }

 private:
  bool CheckMemoryAccounting(std::string* error) const;
  bool CheckAttributionIdentity(std::string* error) const;

  struct NamedCheck {
    std::string name;
    std::function<bool(std::string*)> check;
  };

  const TieredMemory* memory_;
  const LatencyAttribution* attribution_;
  std::vector<NamedCheck> checks_;
  uint64_t checks_run_ = 0;
  uint64_t violations_ = 0;
  std::string last_error_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_FAULT_WATCHDOG_H_
