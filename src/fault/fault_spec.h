#ifndef HYBRIDTIER_FAULT_FAULT_SPEC_H_
#define HYBRIDTIER_FAULT_FAULT_SPEC_H_

/**
 * @file
 * Deterministic fault-schedule specs.
 *
 * A fault schedule names when each slow-tier endpoint degrades, dies,
 * or flaps, as a compact spec string mirroring the topology grammar
 * (`mem/topology.h`):
 *
 *   faults:ep2@5s=down,ep1@2s-8s=degrade3x,ep0@1s-3s=flap(p=0.2,period=50ms)
 *
 * One comma-separated event per token:
 *   ep<N>@<start>[-<end>]=<kind>
 *     <start>/<end>  virtual-time instants; bare numbers are ns, and
 *                    the suffixes ns/us/ms/s scale (decimals allowed:
 *                    "2.5s"). No <end> = the fault never clears.
 *     down           the endpoint rejects accesses (each demand access
 *                    pays the configured fault stall) until <end>, then
 *                    passes through a recovering window.
 *     degrade<F>x    idle latency multiplied and bandwidth divided by
 *                    F (> 1) for the interval.
 *     flap(p=,period=)  the interval is cut into `period`-sized slots;
 *                    each slot is down with probability p, decided by a
 *                    seeded hash of (endpoint, slot) — the same spec
 *                    always flaps identically. Requires an <end>.
 *
 * Chaos mode generates a randomized-but-seeded schedule:
 *
 *   faults:chaos(seed=7,endpoints=3,horizon=200ms,events=6)
 *
 * expands deterministically (SplitMix64 over the seed) into concrete
 * events at parse time, so a chaos run replays bit-identically for the
 * same spec — across reruns and sweep `--jobs` values alike.
 *
 * `FormatFaultSpec` emits the canonical form (events sorted by start
 * time, all times as raw ns): Parse(Format(s)) == s for every valid
 * schedule, including expanded chaos schedules. Malformed specs are
 * user errors reported through `SpecFatal` with the offending token
 * and byte offset.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace hybridtier {

/** What a fault event does to its endpoint while active. */
enum class FaultKind : uint8_t {
  kDown = 0,     //!< Endpoint rejects accesses (fault stall).
  kDegrade = 1,  //!< Latency multiplied / bandwidth divided by factor.
  kFlap = 2,     //!< Seeded per-period coin between down and healthy.
};

/** Display name of a fault kind ("down", "degrade", "flap"). */
const char* FaultKindName(FaultKind kind);

/** One scheduled fault on one endpoint. */
struct FaultEvent {
  uint32_t endpoint = 0;       //!< Slow-tier endpoint index (0-based).
  TimeNs start_ns = 0;         //!< Fault onset (virtual time).
  TimeNs end_ns = 0;           //!< Fault clears; 0 = never (not flap).
  FaultKind kind = FaultKind::kDown;
  double factor = 1.0;         //!< Degrade multiplier (> 1).
  double flap_p = 0.0;         //!< Per-period down probability (flap).
  TimeNs flap_period_ns = 0;   //!< Flap slot width.
};

/** A full fault schedule (possibly empty = healthy fabric). */
struct FaultSchedule {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /** Largest endpoint index named by any event (0 when empty). */
  uint32_t MaxEndpoint() const;

  /** True when any event can take an endpoint down or degrade it —
   *  i.e. any event at all; gates the bounded-queue requirement. */
  bool HasDownOrDegrade() const { return !events.empty(); }
};

/** True if `text` looks like a fault spec (starts with "faults:"). */
bool IsFaultSpec(const std::string& text);

/**
 * Parses a `faults:` spec (fatal with token + byte offset on user
 * error). Chaos specs are expanded into concrete events here; the
 * returned schedule is always a concrete, canonically ordered event
 * list. An empty body ("faults:") is invalid; pass "" for no faults.
 */
FaultSchedule ParseFaultSpec(const std::string& text);

/** Canonical spec of `schedule`; ParseFaultSpec round-trips it. */
std::string FormatFaultSpec(const FaultSchedule& schedule);

/**
 * The seeded flap coin: whether flap event slot `slot` of `endpoint`
 * is down, for per-period probability `p`. A pure hash of its inputs,
 * shared by the health tracker and tests.
 */
bool FlapSlotDown(uint32_t endpoint, uint64_t slot, double p);

}  // namespace hybridtier

#endif  // HYBRIDTIER_FAULT_FAULT_SPEC_H_
