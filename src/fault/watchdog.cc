#include "fault/watchdog.h"

#include "common/logging.h"

namespace hybridtier {

InvariantWatchdog::InvariantWatchdog(const TieredMemory* memory,
                                     const LatencyAttribution* attribution)
    : memory_(memory), attribution_(attribution) {
  HT_ASSERT(memory != nullptr, "watchdog needs the memory substrate");
  checks_.push_back({"memory_accounting", [this](std::string* error) {
                       return CheckMemoryAccounting(error);
                     }});
  checks_.push_back({"attribution_identity", [this](std::string* error) {
                       return CheckAttributionIdentity(error);
                     }});
}

void InvariantWatchdog::RegisterCheck(
    const std::string& name, std::function<bool(std::string*)> check) {
  checks_.push_back({name, std::move(check)});
}

void InvariantWatchdog::RegisterSource(const std::string& name,
                                       const InvariantSource* source) {
  HT_ASSERT(source != nullptr, "null invariant source");
  checks_.push_back({name, [source](std::string* error) {
                       return source->CheckInvariants(error);
                     }});
}

bool InvariantWatchdog::CheckMemoryAccounting(std::string* error) const {
  const uint32_t endpoints = memory_->endpoint_count();
  std::vector<uint64_t> slow_by_endpoint(endpoints, 0);
  std::vector<uint64_t> fast_by_home(endpoints, 0);
  uint64_t fast_used = 0;
  uint64_t slow_used = 0;
  memory_->ScanResident(0, memory_->total_pages(), Tier::kFast,
                        [&](PageId page) {
                          ++fast_used;
                          ++fast_by_home[memory_->EndpointOf(page)];
                        });
  memory_->ScanResident(0, memory_->total_pages(), Tier::kSlow,
                        [&](PageId page) {
                          ++slow_used;
                          ++slow_by_endpoint[memory_->EndpointOf(page)];
                        });
  if (fast_used != memory_->UsedPages(Tier::kFast) ||
      slow_used != memory_->UsedPages(Tier::kSlow)) {
    *error = detail::StrCat(
        "used-page counters diverge from the flag recount: fast ",
        memory_->UsedPages(Tier::kFast), " vs ", fast_used, ", slow ",
        memory_->UsedPages(Tier::kSlow), " vs ", slow_used);
    return false;
  }
  if (memory_->UsedPages(Tier::kFast) > memory_->Capacity(Tier::kFast) ||
      memory_->UsedPages(Tier::kSlow) > memory_->Capacity(Tier::kSlow)) {
    *error = "a tier reports more used pages than its capacity";
    return false;
  }
  for (uint32_t e = 0; e < endpoints; ++e) {
    if (memory_->EndpointResident(e) != slow_by_endpoint[e]) {
      *error = detail::StrCat("endpoint ", e,
                              " slow-resident mirror diverges: ",
                              memory_->EndpointResident(e), " vs recount ",
                              slow_by_endpoint[e]);
      return false;
    }
    if (memory_->EndpointHomedFastResident(e) != fast_by_home[e]) {
      *error = detail::StrCat("endpoint ", e,
                              " fast-resident-by-home mirror diverges: ",
                              memory_->EndpointHomedFastResident(e),
                              " vs recount ", fast_by_home[e]);
      return false;
    }
  }
  return true;
}

bool InvariantWatchdog::CheckAttributionIdentity(std::string* error) const {
  if (attribution_ == nullptr) return true;
  const uint64_t components = attribution_->ComponentSumNs();
  const uint64_t latency = attribution_->op_latency_ns();
  if (components != latency) {
    *error = detail::StrCat("attribution identity broken: components sum ",
                            components, " ns vs op latency ", latency,
                            " ns");
    return false;
  }
  return true;
}

bool InvariantWatchdog::RunChecks(TimeNs now) {
  bool ok = true;
  for (const NamedCheck& check : checks_) {
    ++checks_run_;
    std::string error;
    if (!check.check(&error)) {
      ++violations_;
      last_error_ = detail::StrCat("[", check.name, "] at t=", now, "ns: ",
                                   error);
      ok = false;
    }
  }
  return ok;
}

}  // namespace hybridtier
