#ifndef HYBRIDTIER_FAULT_HEALTH_H_
#define HYBRIDTIER_FAULT_HEALTH_H_

/**
 * @file
 * Per-endpoint health state machine driven by a fault schedule.
 *
 * `HealthTracker` materializes every state edge of every endpoint at
 * construction: down/degrade intervals come straight from the schedule,
 * flap windows are pre-expanded into concrete down slots using the
 * seeded flap coin, and each down interval that ends appends a
 * `recovering` window of configurable length during which the endpoint
 * serves traffic at a mild degrade factor before returning to healthy.
 *
 * State priority when intervals overlap: down > degraded > recovering >
 * healthy. The degrade factor of overlapping degrade intervals is the
 * max. `Advance(now, fn)` replays all edges in virtual-time order and
 * invokes `fn` once per endpoint whose state changed — the tracker is
 * pure bookkeeping (no simulator dependencies) so transitions are
 * unit-testable standalone.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"
#include "fault/fault_spec.h"

namespace hybridtier {

/** Health of one slow-tier endpoint. */
enum class EndpointHealth : uint8_t {
  kHealthy = 0,
  kDegraded = 1,    //!< Serving with inflated latency / shrunk bandwidth.
  kDown = 2,        //!< Rejecting accesses; residents must evacuate.
  kRecovering = 3,  //!< Back up, still slow; being re-admitted.
};

/** Display name ("healthy", "degraded", "down", "recovering"). */
const char* EndpointHealthName(EndpointHealth state);

class HealthTracker {
 public:
  /**
   * Builds the edge timeline for `endpoint_count` endpoints.
   * @param recovery_ns length of the recovering window appended after
   *        each down interval that has an end time.
   * @param recovery_factor degrade factor applied while recovering.
   */
  HealthTracker(const FaultSchedule& schedule, uint32_t endpoint_count,
                TimeNs recovery_ns, double recovery_factor);

  /**
   * Applies all edges with time <= `now`, invoking
   * `fn(endpoint, old_state, new_state, degrade_factor)` once per
   * endpoint whose state changed (in edge-time order). The factor is
   * the effective latency multiplier for the new state (1.0 when
   * healthy or down).
   */
  void Advance(TimeNs now,
               const std::function<void(uint32_t, EndpointHealth,
                                        EndpointHealth, double)>& fn);

  /** Current state of `endpoint` (after the last Advance). */
  EndpointHealth state(uint32_t endpoint) const {
    return states_[endpoint];
  }

  /** Effective degrade factor of `endpoint` (1.0 unless degraded or
   *  recovering). */
  double factor(uint32_t endpoint) const { return factors_[endpoint]; }

  /** Virtual time of the next unapplied edge (max TimeNs when done). */
  TimeNs NextEdge() const;

  /** True once every edge has been applied. */
  bool Settled() const { return next_edge_ >= edges_.size(); }

 private:
  // One half-open state interval on one endpoint, pre-expanded.
  struct Interval {
    uint32_t endpoint;
    TimeNs start_ns;
    TimeNs end_ns;  // 0 = open-ended.
    EndpointHealth state;
    double factor;
  };
  struct Edge {
    TimeNs at_ns;
    uint32_t endpoint;
  };

  // Recomputes endpoint state at `now` from its active intervals.
  void Resolve(uint32_t endpoint, TimeNs now, EndpointHealth* state,
               double* factor) const;

  std::vector<Interval> intervals_;
  std::vector<Edge> edges_;  // Sorted by time; one per potential change.
  size_t next_edge_ = 0;
  std::vector<EndpointHealth> states_;
  std::vector<double> factors_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_FAULT_HEALTH_H_
