#include "fault/fault_runtime.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

FaultRuntime::FaultRuntime(const FaultSchedule& schedule,
                           const FaultRuntimeConfig& config,
                           TieredMemory* memory, PerfModel* perf,
                           MigrationEngine* migration,
                           TieringPolicy* policy, TraceEmitter* trace)
    : health_(schedule, memory->endpoint_count(), config.recovery_ns,
              config.recovery_degrade),
      config_(config),
      memory_(memory),
      perf_(perf),
      migration_(migration),
      policy_(policy),
      trace_(trace),
      evacuations_(memory->endpoint_count()) {
  HT_ASSERT(memory != nullptr && perf != nullptr && migration != nullptr,
            "fault runtime needs memory, perf model, and migration engine");
  HT_ASSERT(schedule.empty() ||
                schedule.MaxEndpoint() < memory->endpoint_count(),
            "fault schedule names endpoint ", schedule.MaxEndpoint(),
            " but the layout has ", memory->endpoint_count());
  HT_ASSERT(config.evac_batch > 0 && config.spill_batch > 0,
            "fault evacuation batches must be positive");
  if (trace_ != nullptr) trace_track_ = trace_->Track("faults");
}

void FaultRuntime::ApplyTransition(uint32_t endpoint,
                                   EndpointHealth old_state,
                                   EndpointHealth new_state, double factor,
                                   TimeNs now) {
  ++stats_.transitions;
  const bool was_down = old_state == EndpointHealth::kDown;
  const bool is_down = new_state == EndpointHealth::kDown;
  perf_->SetEndpointDown(endpoint, is_down);
  migration_->SetEndpointDown(endpoint, is_down);
  // Down beats degrade while active; on any non-down state the service
  // factor (1.0 when healthy) replaces whatever was in effect.
  if (!is_down) perf_->SetEndpointDegrade(endpoint, factor);
  if (is_down && !was_down) {
    ++stats_.endpoints_downed;
    Evacuation& evac = evacuations_[endpoint];
    evac.active = config_.evacuate;
    evac.stripe = 0;
    evac.backoff_ns = 0;
    evac.retry_at_ns = 0;
  }
  if (was_down && !is_down) {
    ++stats_.endpoints_recovered;
    evacuations_[endpoint].active = false;
  }
  if (policy_ != nullptr) {
    policy_->OnEndpointHealth(endpoint, new_state, now);
  }
  if (trace_ != nullptr) [[unlikely]] {
    trace_->Instant(trace_track_, EndpointHealthName(new_state), now,
                    {{"endpoint", static_cast<double>(endpoint)},
                     {"factor", factor}});
  }
}

uint64_t FaultRuntime::Spill(uint64_t needed, TimeNs now) {
  needed = std::min<uint64_t>(needed, config_.spill_batch);
  if (needed == 0) return 0;
  batch_.clear();
  const uint64_t total = memory_->total_pages();
  // Resume the fast-victim scan where the last spill stopped; wrap once.
  uint64_t scanned = 0;
  PageId pos = static_cast<PageId>(spill_cursor_ % total);
  constexpr uint64_t kChunk = 4096;
  while (scanned < total && batch_.size() < needed) {
    const uint64_t len = std::min<uint64_t>(kChunk, total - pos);
    memory_->ScanResident(pos, len, Tier::kFast, [&](PageId page) {
      if (batch_.size() >= needed) return;
      const uint32_t home = memory_->EndpointOf(page);
      if (health_.state(home) == EndpointHealth::kDown) return;
      batch_.push_back(page);
    });
    scanned += len;
    pos += len;
    if (pos >= total) pos = 0;
  }
  spill_cursor_ = pos;
  if (batch_.empty()) return 0;
  const MigrationStats& before = migration_->stats();
  const uint64_t demoted_before = before.demoted_pages;
  migration_->Demote(batch_, now, MigrationReason::kFaultSpill);
  const uint64_t demoted =
      migration_->stats().demoted_pages - demoted_before;
  stats_.spilled_pages += demoted;
  return demoted;
}

void FaultRuntime::RunEvacuation(uint32_t endpoint, Evacuation& evac,
                                 TimeNs now) {
  if (memory_->EndpointResident(endpoint) == 0) return;
  if (now < evac.retry_at_ns) return;

  // Make room first: without free fast units the promotes would all
  // fail. Spill healthy-homed fast pages, then retry with backoff if
  // the fast tier still has no headroom.
  const uint64_t want = std::min<uint64_t>(
      config_.evac_batch, memory_->EndpointResident(endpoint));
  if (memory_->FreePages(Tier::kFast) < want) {
    Spill(want - memory_->FreePages(Tier::kFast), now);
  }
  const uint64_t room = memory_->FreePages(Tier::kFast);
  if (room == 0) {
    ++stats_.evac_retries;
    evac.backoff_ns = evac.backoff_ns == 0
                          ? config_.retry_backoff_ns
                          : std::min(evac.backoff_ns * 2,
                                     config_.max_backoff_ns);
    evac.retry_at_ns = now + evac.backoff_ns;
    if (trace_ != nullptr) [[unlikely]] {
      trace_->Instant(trace_track_, "evac_backoff", now,
                      {{"endpoint", static_cast<double>(endpoint)},
                       {"backoff_ns",
                        static_cast<double>(evac.backoff_ns)}});
    }
    return;
  }
  evac.backoff_ns = 0;
  evac.retry_at_ns = 0;

  // Collect up to min(batch, room) of the endpoint's slow residents by
  // walking its interleave stripes from the resume cursor. The cursor
  // wraps so late arrivals (slow overflow allocations landing on the
  // dead device) are caught on the next pass.
  const uint64_t target = std::min(want, room);
  const uint64_t total = memory_->total_pages();
  const uint32_t endpoints = memory_->endpoint_count();
  const uint64_t gran = memory_->interleave_units();
  const uint64_t stripes =
      endpoints == 1 ? 1 : (total / gran / endpoints) + 2;
  batch_.clear();
  uint64_t walked = 0;
  while (walked < stripes && batch_.size() < target) {
    const uint64_t k = (evac.stripe + walked) % stripes;
    ++walked;
    const PageId start = endpoints == 1
                             ? static_cast<PageId>(k)
                             : static_cast<PageId>((k * endpoints +
                                                    endpoint) *
                                                   gran);
    if (start >= total) continue;
    const uint64_t len = endpoints == 1 ? total : gran;
    memory_->ScanResident(start, len, Tier::kSlow, [&](PageId page) {
      if (batch_.size() >= target) return;
      if (memory_->EndpointOf(page) == endpoint) batch_.push_back(page);
    });
  }
  evac.stripe = (evac.stripe + walked) % stripes;
  if (batch_.empty()) return;

  const uint64_t promoted_before = migration_->stats().promoted_pages;
  const TimeNs cost =
      migration_->Promote(batch_, now, MigrationReason::kFaultEvacuation);
  const uint64_t promoted =
      migration_->stats().promoted_pages - promoted_before;
  stats_.evacuated_pages += promoted;
  if (promoted > 0 && policy_ != nullptr) {
    policy_->OnExternalMigration(now);
  }
  if (trace_ != nullptr) [[unlikely]] {
    trace_->Span(trace_track_, "evacuate", now, now + cost,
                 {{"endpoint", static_cast<double>(endpoint)},
                  {"pages", static_cast<double>(promoted)}});
  }
}

void FaultRuntime::Advance(TimeNs now) {
  health_.Advance(now, [&](uint32_t endpoint, EndpointHealth old_state,
                           EndpointHealth new_state, double factor) {
    ApplyTransition(endpoint, old_state, new_state, factor, now);
  });
  for (uint32_t e = 0; e < evacuations_.size(); ++e) {
    if (evacuations_[e].active) RunEvacuation(e, evacuations_[e], now);
  }
}

bool FaultRuntime::AnyDown() const {
  for (uint32_t e = 0; e < evacuations_.size(); ++e) {
    if (health_.state(e) == EndpointHealth::kDown) return true;
  }
  return false;
}

bool FaultRuntime::Quiesced() const {
  if (!health_.Settled()) return false;
  for (uint32_t e = 0; e < evacuations_.size(); ++e) {
    if (health_.state(e) == EndpointHealth::kDown &&
        memory_->EndpointResident(e) > 0) {
      return false;
    }
  }
  return true;
}

FaultStats FaultRuntime::stats() const {
  FaultStats out = stats_;
  out.stalled_accesses = 0;
  for (uint32_t e = 0; e < perf_->EndpointCount(); ++e) {
    out.stalled_accesses += perf_->EndpointStalledAccesses(e);
  }
  return out;
}

}  // namespace hybridtier
