#include "policies/memtis.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "policies/scan_util.h"

namespace hybridtier {

namespace {
// Synthetic metadata address-space bases (beyond any app address).
constexpr uint64_t kPteBase = 1ULL << 44;      // PTE array lines.
constexpr uint64_t kPmdBase = 1ULL << 45;      // PMD level lines.
constexpr uint64_t kMetaBase = 1ULL << 46;     // 16 B/page counter records.
constexpr uint64_t kHistBase = 1ULL << 47;     // Histogram buckets.
constexpr uint64_t kPagemapBase = 1ULL << 48;  // Demotion scan pagemap.
}  // namespace

MemtisPolicy::MemtisPolicy(const MemtisConfig& config) : config_(config) {
  HT_ASSERT(config.cooling_period_samples > 0, "cooling period must be > 0");
  HT_ASSERT(config.demote_target_frac >= config.demote_trigger_frac,
            "demotion target watermark below trigger watermark");
}

void MemtisPolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);
  counters_ = std::make_unique<ExactCounterTable>(context.footprint_units);
  histogram_ = std::make_unique<Histogram>(config_.hist_max);
  hot_threshold_ = 1;
  if (context.trace != nullptr) {
    cooling_track_ = context.trace->Track("policy/Memtis");
  }
}

void MemtisPolicy::TouchSampleMetadata(PageId unit, uint32_t bucket) {
  // Reaching the per-page record requires the multi-level page-table
  // walk (paper §3.3: "traversing the Linux multi-level page table,
  // potentially causing multiple cache misses"). The PTE level has one
  // 8 B entry per page (8 per line); the PMD level covers 512x more.
  sink().Touch(kPteBase + (unit / 8) * kCacheLineSize);
  sink().Touch(kPmdBase + (unit / (8 * 512)) * kCacheLineSize);
  // The 16 B metadata record itself (4 records per line).
  sink().Touch(kMetaBase + (unit / 4) * kCacheLineSize);
  // The histogram bucket update (8 B buckets, 8 per line).
  sink().Touch(kHistBase + (bucket / 8) * kCacheLineSize);
}

void MemtisPolicy::UpdateThreshold() {
  // The threshold fills the fast tier with the hottest pages; never
  // below 1 so untouched pages are not "hot".
  hot_threshold_ = std::max<uint32_t>(
      1, histogram_->ThresholdForBudget(context().fast_capacity_units));
}

void MemtisPolicy::OnSample(const SampleRecord& sample) {
  ++samples_seen_;

  const uint32_t old_count =
      std::min<uint32_t>(static_cast<uint32_t>(
                             counters_->RawCount(sample.page)),
                         config_.hist_max);
  counters_->Increment(sample.page);
  const uint32_t new_count = std::min(old_count + 1, config_.hist_max);
  if (new_count != old_count) {
    histogram_->Remove(old_count);
    histogram_->Add(new_count);
  }
  TouchSampleMetadata(sample.page, new_count);

  // Promotion candidate?
  if (sample.tier == Tier::kSlow && new_count >= hot_threshold_) {
    pending_promotions_.push_back(sample.page);
  }

  // Periodic cooling: the EMA freshness mechanism.
  if (samples_seen_ - samples_at_last_cooling_ >=
      config_.cooling_period_samples) {
    samples_at_last_cooling_ = samples_seen_;
    counters_->CoolByHalving();
    histogram_->CoolByHalving();
    ++coolings_;
    if (DecisionAudit* audit = migration().audit()) audit->RecordCooling();
    if (context().trace != nullptr) {
      context().trace->Instant(
          cooling_track_, "cooling", sample.time_ns,
          {{"coolings", static_cast<double>(coolings_)}});
    }
    // Cooling rewrites every metadata record: a full sweep of the
    // counter array plus the histogram.
    const uint64_t meta_lines = counters_->memory_bytes() / kCacheLineSize;
    for (uint64_t line = 0; line < meta_lines; ++line) {
      sink().Touch(kMetaBase + line * kCacheLineSize);
    }
    UpdateThreshold();
  }

  // Batched promotion flush.
  if (samples_seen_ - samples_at_last_flush_ >=
      config_.promo_batch_samples) {
    samples_at_last_flush_ = samples_seen_;
    UpdateThreshold();
    if (!pending_promotions_.empty()) {
      // A hot page is sampled many times per batch; migrate it once.
      std::sort(pending_promotions_.begin(), pending_promotions_.end());
      pending_promotions_.erase(
          std::unique(pending_promotions_.begin(),
                      pending_promotions_.end()),
          pending_promotions_.end());
      // Demand demotion first, mirroring kmigrated making room.
      const uint64_t free_pages = memory().FreePages(Tier::kFast);
      if (free_pages < pending_promotions_.size()) {
        DemoteColdPages(pending_promotions_.size() - free_pages,
                        sample.time_ns, MigrationReason::kCapacityDemand);
      }
      migration().Promote(pending_promotions_, sample.time_ns,
                          MigrationReason::kHotnessRank);
      pending_promotions_.clear();
    }
  }
}

void MemtisPolicy::WatermarkDemotion(TimeNs now) {
  TieredMemory& mem = memory();
  const uint64_t capacity = mem.Capacity(Tier::kFast);
  if (capacity == 0) return;
  const double free_frac =
      static_cast<double>(mem.FreePages(Tier::kFast)) /
      static_cast<double>(capacity);
  if (free_frac >= config_.demote_trigger_frac) return;

  const uint64_t target_free = static_cast<uint64_t>(
      config_.demote_target_frac * static_cast<double>(capacity));
  const uint64_t needed = target_free > mem.FreePages(Tier::kFast)
                              ? target_free - mem.FreePages(Tier::kFast)
                              : 0;
  if (needed > 0) DemoteColdPages(needed, now, MigrationReason::kWatermark);
}

uint64_t MemtisPolicy::DemoteColdPages(uint64_t needed, TimeNs now,
                                       MigrationReason reason) {
  TieredMemory& mem = memory();
  std::vector<PageId> victims;
  const uint64_t footprint = context().footprint_units;

  const uint32_t demote_below = std::max<uint32_t>(
      1, hot_threshold_ / std::max<uint32_t>(
                              1, config_.demote_hysteresis_divisor));
  // Incremental linear scan (kswapd-style). The strict phase takes only
  // clearly-cold pages (hysteresis); if starved, the relaxed phase takes
  // any sub-threshold page.
  for (const uint32_t bar : {demote_below, hot_threshold_}) {
    BudgetedResidentScan(
        mem, &scan_cursor_, footprint, config_.scan_units_per_tick,
        Tier::kFast, [&] { return victims.size() >= needed; },
        [&](PageId unit) {
          // The scan reads the pagemap entry and the counter record.
          sink().Touch(kPagemapBase + (unit / 8) * kCacheLineSize);
          sink().Touch(kMetaBase + (unit / 4) * kCacheLineSize);
          if (counters_->RawCount(unit) < bar &&
              victims.size() < needed) {
            victims.push_back(unit);
          }
        });
    if (victims.size() >= needed) break;
  }

  // The relaxed pass can rescan a wrapped cursor range; demote once.
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()),
                victims.end());
  if (!victims.empty()) {
    migration().Demote(victims, now, reason);
  }
  return victims.size();
}

void MemtisPolicy::Tick(TimeNs now) {
  UpdateThreshold();
  WatermarkDemotion(now);
}

size_t MemtisPolicy::MetadataBytes() const {
  // 16 B per page over *all* memory (the paper's 0.39% figure) plus the
  // histogram.
  return counters_->memory_bytes() +
         histogram_->buckets().size() * sizeof(uint64_t);
}

}  // namespace hybridtier
