#ifndef HYBRIDTIER_POLICIES_STATIC_POLICY_H_
#define HYBRIDTIER_POLICIES_STATIC_POLICY_H_

/**
 * @file
 * Non-migrating reference policies.
 *
 * - kAllFast: the performance upper bound of any tiering system
 *   (paper Fig 11) — the simulator gives the fast tier capacity for the
 *   whole footprint, so everything is fast and no migrations happen.
 * - kFirstTouch: static placement — pages stay wherever first-touch
 *   allocation put them (fast until full, then slow). The no-tiering
 *   lower bound.
 */

#include "policies/policy.h"

namespace hybridtier {

/** Which static placement to model. */
enum class StaticKind : uint8_t {
  kAllFast = 0,     //!< Everything in fast tier (upper bound).
  kFirstTouch = 1,  //!< No migration after first touch.
};

/** Migration-free reference policy. */
class StaticPolicy : public TieringPolicy {
 public:
  explicit StaticPolicy(StaticKind kind) : kind_(kind) {}

  size_t MetadataBytes() const override { return 0; }

  /** Static placement ignores every signal; skip access dispatch. */
  AccessInterest access_interest() const override {
    return AccessInterest::kNone;
  }


  const char* name() const override {
    return kind_ == StaticKind::kAllFast ? "AllFast" : "FirstTouch";
  }

  /** Placement flavour. */
  StaticKind kind() const { return kind_; }

 private:
  StaticKind kind_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_STATIC_POLICY_H_
