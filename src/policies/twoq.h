#ifndef HYBRIDTIER_POLICIES_TWOQ_H_
#define HYBRIDTIER_POLICIES_TWOQ_H_

/**
 * @file
 * TwoQ baseline (Johnson & Shasha, VLDB'94) adapted to memory tiering
 * per the paper's methodology (§5.2, §6.1): A1in is a FIFO of
 * once-accessed pages, A1out a ghost FIFO remembering pages evicted
 * from A1in, and Am an LRU of pages re-referenced out of A1out. The
 * paper uses the original parameter defaults Kin = c/4, Kout = c/2.
 * As with ARC, a full miss admits (promotes) the page directly.
 */

#include <cstdint>

#include "policies/lru_list.h"
#include "policies/policy.h"

namespace hybridtier {

/** TwoQ tiering baseline. */
class TwoQPolicy : public TieringPolicy {
 public:
  TwoQPolicy() = default;

  void Bind(const PolicyContext& context) override;
  void OnSample(const SampleRecord& sample) override;
  /** Sample-driven: never observes the demand stream (OnAccess stays
   *  the inherited no-op), so per-access dispatch is skipped. */
  AccessInterest access_interest() const override {
    return AccessInterest::kNone;
  }

  size_t MetadataBytes() const override;
  const char* name() const override { return "TwoQ"; }

  /** Sizes of the three queues (A1in, A1out, Am). */
  size_t a1in_size() const { return a1in_.size(); }
  size_t a1out_size() const { return a1out_.size(); }
  size_t am_size() const { return am_.size(); }

 private:
  /** Frees one cached slot per the 2Q reclaim rule. */
  void ReclaimOne(TimeNs now);

  void DemoteUnit(PageId unit, TimeNs now);
  void PromoteUnit(PageId unit, TimeNs now);
  void TouchListMetadata(PageId unit);

  LruList a1in_, a1out_, am_;
  uint64_t capacity_ = 0;
  uint64_t kin_ = 0;
  uint64_t kout_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_TWOQ_H_
