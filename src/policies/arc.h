#ifndef HYBRIDTIER_POLICIES_ARC_H_
#define HYBRIDTIER_POLICIES_ARC_H_

/**
 * @file
 * ARC baseline (Megiddo & Modha, FAST'03) adapted to memory tiering,
 * per the paper's methodology (§5.2): the fast tier is the "cache",
 * sampled accesses are the reference stream, new pages are allocated in
 * the slow tier, and a miss admits (promotes) the page immediately —
 * the lenient admission the paper identifies as ARC's weakness for
 * tiering.
 *
 * Standard ARC state: T1 (recent, cached), T2 (frequent, cached),
 * B1/B2 (ghost histories), and the adaptive target p for |T1|.
 */

#include <cstdint>

#include "policies/lru_list.h"
#include "policies/policy.h"

namespace hybridtier {

/** ARC tiering baseline. */
class ArcPolicy : public TieringPolicy {
 public:
  ArcPolicy() = default;

  void Bind(const PolicyContext& context) override;
  void OnSample(const SampleRecord& sample) override;
  /** Sample-driven: never observes the demand stream (OnAccess stays
   *  the inherited no-op), so per-access dispatch is skipped. */
  AccessInterest access_interest() const override {
    return AccessInterest::kNone;
  }

  size_t MetadataBytes() const override;
  const char* name() const override { return "ARC"; }

  /** Current adaptive target for |T1|. */
  uint64_t target_p() const { return p_; }

  /** Sizes of the four ARC lists (T1, T2, B1, B2). */
  size_t t1_size() const { return t1_.size(); }
  size_t t2_size() const { return t2_.size(); }
  size_t b1_size() const { return b1_.size(); }
  size_t b2_size() const { return b2_.size(); }

 private:
  /** ARC's REPLACE: demotes from T1 or T2 into the ghost lists. */
  void Replace(PageId incoming, bool in_b2, TimeNs now);

  /** Demotes `unit` to the slow tier (single-page migration). */
  void DemoteUnit(PageId unit, TimeNs now);

  /** Promotes `unit` to the fast tier (single-page migration). */
  void PromoteUnit(PageId unit, TimeNs now);

  /** Touches the scattered metadata lines of one list operation. */
  void TouchListMetadata(PageId unit);

  LruList t1_, t2_, b1_, b2_;
  uint64_t p_ = 0;         //!< Adaptive target size of T1.
  uint64_t capacity_ = 0;  //!< c = fast-tier units.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_ARC_H_
