#ifndef HYBRIDTIER_POLICIES_LRU_LIST_H_
#define HYBRIDTIER_POLICIES_LRU_LIST_H_

/**
 * @file
 * Doubly linked LRU list with O(1) membership, as used by the ARC and
 * TwoQ baselines. Classic pointer-chasing list + hash-map structure —
 * deliberately so: the paper's Observation 3 is that such structures
 * have poor locality, and our cache-traffic model reports exactly the
 * scattered lines an implementation like this would touch.
 */

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/logging.h"
#include "mem/page.h"

namespace hybridtier {

/** LRU-ordered list of page units with O(1) lookup/removal. */
class LruList {
 public:
  /** Inserts `unit` at the MRU end; must not already be present. */
  void PushMru(PageId unit) {
    HT_ASSERT(!Contains(unit), "unit ", unit, " already in list");
    order_.push_front(unit);
    index_[unit] = order_.begin();
  }

  /** Removes and returns the LRU unit; list must not be empty. */
  PageId PopLru() {
    HT_ASSERT(!order_.empty(), "PopLru on empty list");
    const PageId unit = order_.back();
    order_.pop_back();
    index_.erase(unit);
    return unit;
  }

  /** The LRU unit without removing it; list must not be empty. */
  PageId PeekLru() const {
    HT_ASSERT(!order_.empty(), "PeekLru on empty list");
    return order_.back();
  }

  /** Removes `unit` if present; returns whether it was present. */
  bool Remove(PageId unit) {
    auto it = index_.find(unit);
    if (it == index_.end()) return false;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  /** Moves `unit` to the MRU end; returns whether it was present. */
  bool MoveToMru(PageId unit) {
    auto it = index_.find(unit);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    it->second = order_.begin();
    return true;
  }

  /** True if `unit` is in the list. */
  bool Contains(PageId unit) const { return index_.count(unit) != 0; }

  /** Number of units in the list. */
  size_t size() const { return order_.size(); }

  /** True when the list is empty. */
  bool empty() const { return order_.empty(); }

  /**
   * Approximate bytes consumed: a list node (3 words) plus a hash-map
   * slot (~2 words) per entry.
   */
  size_t memory_bytes() const { return size() * (3 + 2) * 8; }

 private:
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_LRU_LIST_H_
