#ifndef HYBRIDTIER_POLICIES_SCAN_UTIL_H_
#define HYBRIDTIER_POLICIES_SCAN_UTIL_H_

/**
 * @file
 * Budgeted, wrapping resident-page scan shared by the demotion paths of
 * the tiering policies (HybridTier, Memtis, TPP, AutoNUMA). Each policy
 * walks the pagemap in chunks against a per-tick unit budget; keeping
 * the chunking and cursor arithmetic in one place keeps the accounting
 * (charge what was visited, wrap at the footprint) from diverging.
 */

#include <algorithm>
#include <cstdint>

#include "mem/page.h"
#include "mem/tiered_memory.h"

namespace hybridtier {

/**
 * Scans resident pages of `tier` from `*cursor` in chunks of up to 1024
 * units, wrapping at `footprint`, until `budget` units were visited or
 * `done()` returns true (checked between chunks, as the real pagemap
 * walks batch their work). Charges only units actually visited — the
 * tail chunk is clipped at the footprint, and charging its nominal size
 * would under-scan passes near the wrap. Advances `*cursor` and returns
 * the units visited. Templated on both callbacks so the per-unit
 * classification inlines into the scan loop.
 */
template <typename DoneFn, typename UnitFn>
inline uint64_t BudgetedResidentScan(
    const TieredMemory& memory, PageId* cursor, uint64_t footprint,
    uint64_t budget, Tier tier, const DoneFn& done, const UnitFn& fn) {
  uint64_t scanned = 0;
  while (scanned < budget && !done()) {
    const uint64_t chunk = std::min<uint64_t>(1024, budget - scanned);
    const uint64_t visited = memory.ScanResident(*cursor, chunk, tier, fn);
    if (visited == 0) break;  // Defensive: never spin on an empty scan.
    scanned += visited;
    *cursor += visited;
    if (*cursor >= footprint) *cursor = 0;
  }
  return scanned;
}

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_SCAN_UTIL_H_
