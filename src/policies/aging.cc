#include "policies/aging.h"

#include <algorithm>

namespace hybridtier {

uint64_t ClockAger::Scan(PageId start, uint64_t count) {
  const PageId end =
      std::min<PageId>(start + count, static_cast<PageId>(age_.size()));
  for (PageId unit = start; unit < end; ++unit) {
    if (accessed_[unit]) {
      accessed_[unit] = 0;
      age_[unit] = 0;
    } else if (age_[unit] < 255) {
      ++age_[unit];
    }
  }
  return end > start ? end - start : 0;
}

}  // namespace hybridtier
