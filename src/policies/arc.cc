#include "policies/arc.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "probstruct/hash.h"

namespace hybridtier {

namespace {
constexpr uint64_t kListBase = 1ULL << 44;  // List-node heap region.
constexpr uint64_t kMapBase = 1ULL << 45;   // Hash-map bucket region.
}  // namespace

void ArcPolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);
  capacity_ = context.fast_capacity_units;
  p_ = 0;
}

void ArcPolicy::TouchListMetadata(PageId unit) {
  // List nodes live wherever the allocator put them: effectively random
  // lines (the locality weakness of exact list structures, paper §2.3.3).
  sink().Touch(kListBase + (Mix64(unit) % (capacity_ * 4 + 64)) *
                               kCacheLineSize);
  sink().Touch(kMapBase +
               (Mix64(unit ^ 0xa5a5a5a5ULL) % (capacity_ * 4 + 64)) *
                   kCacheLineSize);
}

void ArcPolicy::DemoteUnit(PageId unit, TimeNs now) {
  if (memory().IsResident(unit) &&
      memory().TierOf(unit) == Tier::kFast) {
    const PageId pages[] = {unit};
    migration().Demote(pages, now);
  }
}

void ArcPolicy::PromoteUnit(PageId unit, TimeNs now) {
  if (memory().IsResident(unit) &&
      memory().TierOf(unit) == Tier::kSlow) {
    const PageId pages[] = {unit};
    migration().Promote(pages, now);
  }
}

void ArcPolicy::Replace(PageId incoming, bool in_b2, TimeNs now) {
  if (!t1_.empty() &&
      (t1_.size() > p_ || (in_b2 && t1_.size() == p_))) {
    const PageId victim = t1_.PopLru();
    b1_.PushMru(victim);
    DemoteUnit(victim, now);
  } else if (!t2_.empty()) {
    const PageId victim = t2_.PopLru();
    b2_.PushMru(victim);
    DemoteUnit(victim, now);
  } else if (!t1_.empty()) {
    const PageId victim = t1_.PopLru();
    b1_.PushMru(victim);
    DemoteUnit(victim, now);
  }
  (void)incoming;
}

void ArcPolicy::OnSample(const SampleRecord& sample) {
  const PageId x = sample.page;
  const TimeNs now = sample.time_ns;
  if (capacity_ == 0) return;
  TouchListMetadata(x);

  // Case I: hit in T1 or T2.
  if (t1_.Contains(x)) {
    t1_.Remove(x);
    t2_.PushMru(x);
    return;
  }
  if (t2_.MoveToMru(x)) return;

  // Case II: ghost hit in B1 — recency is winning, grow p.
  if (b1_.Contains(x)) {
    const uint64_t delta =
        std::max<uint64_t>(1, b2_.size() / std::max<size_t>(b1_.size(), 1));
    p_ = std::min(capacity_, p_ + delta);
    Replace(x, /*in_b2=*/false, now);
    b1_.Remove(x);
    t2_.PushMru(x);
    PromoteUnit(x, now);
    return;
  }

  // Case III: ghost hit in B2 — frequency is winning, shrink p.
  if (b2_.Contains(x)) {
    const uint64_t delta =
        std::max<uint64_t>(1, b1_.size() / std::max<size_t>(b2_.size(), 1));
    p_ = p_ > delta ? p_ - delta : 0;
    Replace(x, /*in_b2=*/true, now);
    b2_.Remove(x);
    t2_.PushMru(x);
    PromoteUnit(x, now);
    return;
  }

  // Case IV: full miss — admit immediately (lenient promotion).
  const uint64_t l1 = t1_.size() + b1_.size();
  if (l1 == capacity_) {
    if (t1_.size() < capacity_) {
      b1_.PopLru();
      Replace(x, /*in_b2=*/false, now);
    } else {
      const PageId victim = t1_.PopLru();
      DemoteUnit(victim, now);
    }
  } else if (l1 < capacity_) {
    const uint64_t total = l1 + t2_.size() + b2_.size();
    if (total >= capacity_) {
      if (total == 2 * capacity_ && !b2_.empty()) b2_.PopLru();
      Replace(x, /*in_b2=*/false, now);
    }
  }
  t1_.PushMru(x);
  PromoteUnit(x, now);
}

size_t ArcPolicy::MetadataBytes() const {
  return t1_.memory_bytes() + t2_.memory_bytes() + b1_.memory_bytes() +
         b2_.memory_bytes();
}

}  // namespace hybridtier
