#include "policies/twoq.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "probstruct/hash.h"

namespace hybridtier {

namespace {
constexpr uint64_t kListBase = 1ULL << 44;
constexpr uint64_t kMapBase = 1ULL << 45;
}  // namespace

void TwoQPolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);
  capacity_ = context.fast_capacity_units;
  // Original-paper defaults (HybridTier paper §6.1): Kin = c/4,
  // Kout = c/2.
  kin_ = std::max<uint64_t>(1, capacity_ / 4);
  kout_ = std::max<uint64_t>(1, capacity_ / 2);
}

void TwoQPolicy::TouchListMetadata(PageId unit) {
  sink().Touch(kListBase + (Mix64(unit) % (capacity_ * 4 + 64)) *
                               kCacheLineSize);
  sink().Touch(kMapBase +
               (Mix64(unit ^ 0x5a5a5a5aULL) % (capacity_ * 4 + 64)) *
                   kCacheLineSize);
}

void TwoQPolicy::DemoteUnit(PageId unit, TimeNs now) {
  if (memory().IsResident(unit) &&
      memory().TierOf(unit) == Tier::kFast) {
    const PageId pages[] = {unit};
    migration().Demote(pages, now);
  }
}

void TwoQPolicy::PromoteUnit(PageId unit, TimeNs now) {
  if (memory().IsResident(unit) &&
      memory().TierOf(unit) == Tier::kSlow) {
    const PageId pages[] = {unit};
    migration().Promote(pages, now);
  }
}

void TwoQPolicy::ReclaimOne(TimeNs now) {
  if (a1in_.size() >= kin_ && !a1in_.empty()) {
    // Evict the FIFO tail of A1in into the ghost queue.
    const PageId victim = a1in_.PopLru();
    a1out_.PushMru(victim);
    DemoteUnit(victim, now);
    if (a1out_.size() > kout_) a1out_.PopLru();
  } else if (!am_.empty()) {
    const PageId victim = am_.PopLru();
    DemoteUnit(victim, now);
  } else if (!a1in_.empty()) {
    const PageId victim = a1in_.PopLru();
    a1out_.PushMru(victim);
    DemoteUnit(victim, now);
    if (a1out_.size() > kout_) a1out_.PopLru();
  }
}

void TwoQPolicy::OnSample(const SampleRecord& sample) {
  const PageId x = sample.page;
  const TimeNs now = sample.time_ns;
  if (capacity_ == 0) return;
  TouchListMetadata(x);

  // Hit in Am: plain LRU behaviour.
  if (am_.MoveToMru(x)) return;

  // Hit in A1in: correlated reference, leave position unchanged.
  if (a1in_.Contains(x)) return;

  // Hit in the ghost queue: the page earned its way into Am.
  if (a1out_.Contains(x)) {
    if (a1in_.size() + am_.size() >= capacity_) ReclaimOne(now);
    a1out_.Remove(x);
    am_.PushMru(x);
    PromoteUnit(x, now);
    return;
  }

  // Full miss: admit into A1in (lenient promotion, as in the paper).
  if (a1in_.size() + am_.size() >= capacity_) ReclaimOne(now);
  a1in_.PushMru(x);
  PromoteUnit(x, now);
}

size_t TwoQPolicy::MetadataBytes() const {
  return a1in_.memory_bytes() + a1out_.memory_bytes() + am_.memory_bytes();
}

}  // namespace hybridtier
