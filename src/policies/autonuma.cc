#include "policies/autonuma.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "policies/scan_util.h"

namespace hybridtier {

namespace {
constexpr uint64_t kPteBase = 1ULL << 44;      // Fault-handling PTE lines.
constexpr uint64_t kLruBase = 1ULL << 45;      // MGLRU generation state.
constexpr uint64_t kPagemapBase = 1ULL << 46;  // Aging/demotion scans.
}  // namespace

AutoNumaPolicy::AutoNumaPolicy(const AutoNumaConfig& config)
    : config_(config) {
  HT_ASSERT(config.demote_target_frac >= config.demote_trigger_frac,
            "demotion target watermark below trigger watermark");
}

void AutoNumaPolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);
  ager_ = std::make_unique<ClockAger>(context.footprint_units);
  promotion_tokens_ = config_.promotion_rate_per_tick;
}

void AutoNumaPolicy::OnAccess(PageId unit, const TouchResult& touch,
                              TimeNs now) {
  // Hardware maintains the accessed bit on every access — free signal.
  ager_->MarkAccessed(unit);

  if (!touch.hint_fault) return;
  ++hint_faults_;
  // Fault handling walks the page table and updates LRU state.
  sink().Touch(kPteBase + (unit / 8) * kCacheLineSize);
  sink().Touch(kLruBase + (unit / 16) * kCacheLineSize);

  // Promote on low hint-fault latency, with no frequency check: the
  // defining AutoNUMA behaviour (and its weakness: a single recent
  // access promotes a cold page).
  if (touch.tier == Tier::kSlow &&
      touch.fault_latency_ns <= config_.promotion_latency_ns) {
    if (promotion_tokens_ == 0) {
      ++rate_limited_promotions_;
      return;
    }
    --promotion_tokens_;
    const PageId pages[] = {unit};
    migration().Promote(pages, now);
    ++fault_promotions_;
  }
}

void AutoNumaPolicy::WatermarkDemotion(TimeNs now) {
  TieredMemory& mem = memory();
  const uint64_t capacity = mem.Capacity(Tier::kFast);
  if (capacity == 0) return;
  const double free_frac =
      static_cast<double>(mem.FreePages(Tier::kFast)) /
      static_cast<double>(capacity);
  if (free_frac >= config_.demote_trigger_frac) return;

  const uint64_t target_free = static_cast<uint64_t>(
      config_.demote_target_frac * static_cast<double>(capacity));
  uint64_t needed = target_free > mem.FreePages(Tier::kFast)
                        ? target_free - mem.FreePages(Tier::kFast)
                        : 0;
  if (needed == 0) return;

  std::vector<PageId> victims;
  const uint64_t footprint = context().footprint_units;
  // MGLRU eviction: walk fast-resident pages, demote those whose
  // generation age shows no recent access.
  BudgetedResidentScan(mem, &demote_cursor_, footprint,
                       config_.age_chunk_units, Tier::kFast,
                       [&] { return victims.size() >= needed; },
                       [&](PageId unit) {
                         sink().Touch(kPagemapBase +
                                      (unit / 8) * kCacheLineSize);
                         if (ager_->AgeOf(unit) >=
                                 config_.demote_min_age &&
                             victims.size() < needed) {
                           victims.push_back(unit);
                         }
                       });
  if (!victims.empty()) migration().Demote(victims, now);
}

void AutoNumaPolicy::Tick(TimeNs now) {
  TieredMemory& mem = memory();
  const uint64_t footprint = context().footprint_units;

  // Refill the migration rate limiter (one tick's worth, no banking
  // beyond a 2-tick burst).
  promotion_tokens_ = std::min<uint64_t>(
      promotion_tokens_ + config_.promotion_rate_per_tick,
      2 * config_.promotion_rate_per_tick);

  // NUMA balancing scan: unmap the next chunk of the address space so
  // subsequent accesses take hint faults.
  const PageId protect_end =
      std::min<PageId>(protect_cursor_ + config_.scan_chunk_units,
                       footprint);
  mem.Protect(PageRange{protect_cursor_, protect_end}, now);
  // The scan itself reads the page-table range it unmaps.
  for (PageId unit = protect_cursor_; unit < protect_end; unit += 8) {
    sink().Touch(kPteBase + (unit / 8) * kCacheLineSize);
  }
  protect_cursor_ = protect_end >= footprint ? 0 : protect_end;

  // MGLRU aging: harvest accessed bits over the next chunk.
  ager_->Scan(age_cursor_, config_.age_chunk_units);
  for (PageId unit = age_cursor_;
       unit < std::min<PageId>(age_cursor_ + config_.age_chunk_units,
                               footprint);
       unit += 16) {
    sink().Touch(kLruBase + (unit / 16) * kCacheLineSize);
  }
  age_cursor_ += config_.age_chunk_units;
  if (age_cursor_ >= footprint) age_cursor_ = 0;

  WatermarkDemotion(now);
}

size_t AutoNumaPolicy::MetadataBytes() const {
  // Accessed-bit + generation state; AutoNUMA also keeps last-fault
  // scan bookkeeping in struct page (modeled at 4 B per unit).
  return ager_->memory_bytes() + context().footprint_units * 4;
}

}  // namespace hybridtier
