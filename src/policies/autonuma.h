#ifndef HYBRIDTIER_POLICIES_AUTONUMA_H_
#define HYBRIDTIER_POLICIES_AUTONUMA_H_

/**
 * @file
 * AutoNUMA baseline (Linux NUMA balancing with MGLRU demotion), as
 * described in the paper (§2.3.2, §5.2).
 *
 * AutoNUMA is *recency-based*: it periodically unmaps ("protects")
 * chunks of the application address space; the first access to an
 * unmapped page takes a hint fault, and the elapsed time between unmap
 * and fault is the page's hint-fault latency. Pages whose latency is
 * under a threshold (1 second upstream) are promoted immediately —
 * regardless of access history, which is exactly why it mispromotes
 * cold pages (paper Fig 4). Demotion uses multi-generational-LRU aging
 * driven by hardware accessed bits.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "policies/aging.h"
#include "policies/policy.h"

namespace hybridtier {

/** Tunables for the AutoNUMA baseline. */
struct AutoNumaConfig {
  /** Hint-fault latency below which a slow page is promoted. */
  TimeNs promotion_latency_ns = 20 * kMillisecond;
  /** Address-space units protected per maintenance tick. */
  uint64_t scan_chunk_units = 1024;
  /** Accessed-bit harvest chunk per tick (MGLRU aging). */
  uint64_t age_chunk_units = 2048;
  /** Demote when fast free fraction falls below this. */
  double demote_trigger_frac = 0.02;
  /** Demote until fast free fraction reaches this. */
  double demote_target_frac = 0.04;
  /** Minimum age (generations unaccessed) for demotion eligibility. */
  uint8_t demote_min_age = 2;
  /** Fault-promotion rate limit, pages per maintenance tick (models
   *  Linux NUMA-balancing migration rate limiting). */
  uint64_t promotion_rate_per_tick = 48;
};

/** Linux AutoNUMA + MGLRU tiering baseline. */
class AutoNumaPolicy : public TieringPolicy {
 public:
  explicit AutoNumaPolicy(const AutoNumaConfig& config = AutoNumaConfig{});

  void Bind(const PolicyContext& context) override;
  void OnAccess(PageId unit, const TouchResult& touch, TimeNs now) override;
  /** Promotes at fault time inside OnAccess, so later accesses of the
   *  same op must observe the migration: requires inline dispatch. */
  AccessInterest access_interest() const override {
    return AccessInterest::kInline;
  }

  void Tick(TimeNs now) override;
  size_t MetadataBytes() const override;
  const char* name() const override { return "AutoNUMA"; }

  /** Hint faults observed. */
  uint64_t hint_faults() const { return hint_faults_; }

  /** Faults that resulted in promotion. */
  uint64_t fault_promotions() const { return fault_promotions_; }

  /** Promotions skipped by the migration rate limiter. */
  uint64_t rate_limited_promotions() const {
    return rate_limited_promotions_;
  }

 private:
  void WatermarkDemotion(TimeNs now);

  AutoNumaConfig config_;
  std::unique_ptr<ClockAger> ager_;
  PageId protect_cursor_ = 0;
  PageId age_cursor_ = 0;
  PageId demote_cursor_ = 0;
  uint64_t hint_faults_ = 0;
  uint64_t fault_promotions_ = 0;
  uint64_t promotion_tokens_ = 0;
  uint64_t rate_limited_promotions_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_AUTONUMA_H_
