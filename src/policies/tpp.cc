#include "policies/tpp.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"
#include "policies/scan_util.h"

namespace hybridtier {

namespace {
constexpr uint64_t kPteBase = 1ULL << 44;
constexpr uint64_t kLruBase = 1ULL << 45;
constexpr uint64_t kPagemapBase = 1ULL << 46;
constexpr uint64_t kFaultTimeBase = 1ULL << 47;
}  // namespace

TppPolicy::TppPolicy(const TppConfig& config) : config_(config) {
  HT_ASSERT(config.demote_target_frac >= config.demote_trigger_frac,
            "demotion target watermark below trigger watermark");
}

void TppPolicy::Bind(const PolicyContext& context) {
  TieringPolicy::Bind(context);
  ager_ = std::make_unique<ClockAger>(context.footprint_units);
  last_fault_time_.assign(context.footprint_units, 0);
  promotion_tokens_ = config_.promotion_rate_per_tick;
}

void TppPolicy::OnAccess(PageId unit, const TouchResult& touch,
                         TimeNs now) {
  ager_->MarkAccessed(unit);
  if (!touch.hint_fault) return;

  sink().Touch(kPteBase + (unit / 8) * kCacheLineSize);
  sink().Touch(kFaultTimeBase + (unit / 8) * kCacheLineSize);

  if (touch.tier == Tier::kSlow) {
    const TimeNs previous = last_fault_time_[unit];
    // Active-list test: this is at least the second reference within the
    // window, so the page is on the active LRU list -> promote.
    if (previous != 0 && now - previous <= config_.active_window_ns) {
      if (promotion_tokens_ > 0) {
        --promotion_tokens_;
        const PageId pages[] = {unit};
        migration().Promote(pages, now);
        ++fault_promotions_;
      } else {
        ++rate_limited_promotions_;
      }
    }
  }
  last_fault_time_[unit] = now;
}

void TppPolicy::WatermarkDemotion(TimeNs now) {
  TieredMemory& mem = memory();
  const uint64_t capacity = mem.Capacity(Tier::kFast);
  if (capacity == 0) return;
  const double free_frac =
      static_cast<double>(mem.FreePages(Tier::kFast)) /
      static_cast<double>(capacity);
  if (free_frac >= config_.demote_trigger_frac) return;

  const uint64_t target_free = static_cast<uint64_t>(
      config_.demote_target_frac * static_cast<double>(capacity));
  uint64_t needed = target_free > mem.FreePages(Tier::kFast)
                        ? target_free - mem.FreePages(Tier::kFast)
                        : 0;
  if (needed == 0) return;

  std::vector<PageId> victims;
  const uint64_t footprint = context().footprint_units;
  BudgetedResidentScan(mem, &demote_cursor_, footprint,
                       config_.age_chunk_units, Tier::kFast,
                       [&] { return victims.size() >= needed; },
                       [&](PageId unit) {
                         sink().Touch(kPagemapBase +
                                      (unit / 8) * kCacheLineSize);
                         if (ager_->AgeOf(unit) >=
                                 config_.demote_min_age &&
                             victims.size() < needed) {
                           victims.push_back(unit);
                         }
                       });
  if (!victims.empty()) migration().Demote(victims, now);
}

void TppPolicy::Tick(TimeNs now) {
  TieredMemory& mem = memory();
  const uint64_t footprint = context().footprint_units;

  // Refill the migration rate limiter.
  promotion_tokens_ = std::min<uint64_t>(
      promotion_tokens_ + config_.promotion_rate_per_tick,
      2 * config_.promotion_rate_per_tick);

  const PageId protect_end =
      std::min<PageId>(protect_cursor_ + config_.scan_chunk_units,
                       footprint);
  mem.Protect(PageRange{protect_cursor_, protect_end}, now);
  for (PageId unit = protect_cursor_; unit < protect_end; unit += 8) {
    sink().Touch(kPteBase + (unit / 8) * kCacheLineSize);
  }
  protect_cursor_ = protect_end >= footprint ? 0 : protect_end;

  ager_->Scan(age_cursor_, config_.age_chunk_units);
  for (PageId unit = age_cursor_;
       unit < std::min<PageId>(age_cursor_ + config_.age_chunk_units,
                               footprint);
       unit += 16) {
    sink().Touch(kLruBase + (unit / 16) * kCacheLineSize);
  }
  age_cursor_ += config_.age_chunk_units;
  if (age_cursor_ >= footprint) age_cursor_ = 0;

  WatermarkDemotion(now);
}

size_t TppPolicy::MetadataBytes() const {
  return ager_->memory_bytes() +
         last_fault_time_.size() * sizeof(TimeNs);
}

}  // namespace hybridtier
