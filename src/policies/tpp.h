#ifndef HYBRIDTIER_POLICIES_TPP_H_
#define HYBRIDTIER_POLICIES_TPP_H_

/**
 * @file
 * TPP baseline (Maruf et al., ASPLOS'23), reimplemented from its paper
 * and the HybridTier paper's characterization (§2.3.2, §8).
 *
 * TPP ("Transparent Page Placement") is recency-based like AutoNUMA but
 * adds an active-list filter: a slow-tier page is promoted only when a
 * hint fault shows it was *re-referenced recently* (we model the LRU
 * active-list test as "second fault within a window"), which cuts some
 * of AutoNUMA's one-touch mispromotions but still ignores long-term
 * frequency. Demotion reclaims from the inactive list (accessed-bit
 * aging) and keeps fast-tier headroom for new allocations.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "policies/aging.h"
#include "policies/policy.h"

namespace hybridtier {

/** Tunables for the TPP baseline. */
struct TppConfig {
  /** Two hint faults within this window mark a page active -> promote. */
  TimeNs active_window_ns = 100 * kMillisecond;
  /** Address-space units protected per maintenance tick. */
  uint64_t scan_chunk_units = 1024;
  /** Accessed-bit harvest chunk per tick. */
  uint64_t age_chunk_units = 2048;
  /** Demote when fast free fraction falls below this (TPP keeps larger
   *  headroom than AutoNUMA to absorb allocation bursts). */
  double demote_trigger_frac = 0.04;
  /** Demote until fast free fraction reaches this. */
  double demote_target_frac = 0.08;
  /** Minimum generations unaccessed for demotion eligibility. */
  uint8_t demote_min_age = 2;
  /** Fault-promotion rate limit, pages per maintenance tick. */
  uint64_t promotion_rate_per_tick = 48;
};

/** TPP tiering baseline. */
class TppPolicy : public TieringPolicy {
 public:
  explicit TppPolicy(const TppConfig& config = TppConfig{});

  void Bind(const PolicyContext& context) override;
  void OnAccess(PageId unit, const TouchResult& touch, TimeNs now) override;
  /** Promotes at fault time inside OnAccess, so later accesses of the
   *  same op must observe the migration: requires inline dispatch. */
  AccessInterest access_interest() const override {
    return AccessInterest::kInline;
  }

  void Tick(TimeNs now) override;
  size_t MetadataBytes() const override;
  const char* name() const override { return "TPP"; }

  /** Promotions executed via the two-fault filter. */
  uint64_t fault_promotions() const { return fault_promotions_; }

 private:
  void WatermarkDemotion(TimeNs now);

  TppConfig config_;
  std::unique_ptr<ClockAger> ager_;
  std::vector<TimeNs> last_fault_time_;  //!< Per unit; 0 = never.
  PageId protect_cursor_ = 0;
  PageId age_cursor_ = 0;
  PageId demote_cursor_ = 0;
  uint64_t fault_promotions_ = 0;
  uint64_t promotion_tokens_ = 0;
  uint64_t rate_limited_promotions_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_TPP_H_
