#ifndef HYBRIDTIER_POLICIES_AGING_H_
#define HYBRIDTIER_POLICIES_AGING_H_

/**
 * @file
 * Accessed-bit aging helper (MGLRU-style generations).
 *
 * Kernel reclaim infers recency from hardware accessed bits harvested by
 * periodic page-table scans. AutoNUMA's MGLRU demotion and TPP's
 * inactive-list demotion both reduce to: pages not accessed for more
 * scan generations are colder. This helper tracks one accessed bit per
 * tracking unit (set on every demand access — that is hardware
 * behaviour, free to the kernel) and a small age counter incremented by
 * the periodic scan when the bit is clear.
 */

#include <cstdint>
#include <vector>

#include "mem/page.h"

namespace hybridtier {

/** Per-unit accessed-bit ages with periodic harvest scans. */
class ClockAger {
 public:
  /** @param num_units tracking units covered. */
  explicit ClockAger(uint64_t num_units)
      : accessed_(num_units, 0), age_(num_units, 0) {}

  /** Hardware side: marks `unit` accessed. */
  void MarkAccessed(PageId unit) { accessed_[unit] = 1; }

  /**
   * Harvest scan over [start, start+count): pages with the accessed bit
   * set get age 0 and the bit cleared; others age by one generation
   * (saturating at 255). Returns units scanned.
   */
  uint64_t Scan(PageId start, uint64_t count);

  /** Age in generations since last observed access. */
  uint8_t AgeOf(PageId unit) const { return age_[unit]; }

  /** Accessed bit (unharvested) of `unit`. */
  bool AccessedBit(PageId unit) const { return accessed_[unit] != 0; }

  /** Units covered. */
  uint64_t size() const { return age_.size(); }

  /** Metadata bytes consumed (1 bit modeled as 1 byte + 1 byte age). */
  size_t memory_bytes() const { return accessed_.size() + age_.size(); }

 private:
  std::vector<uint8_t> accessed_;
  std::vector<uint8_t> age_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_AGING_H_
