#ifndef HYBRIDTIER_POLICIES_MEMTIS_H_
#define HYBRIDTIER_POLICIES_MEMTIS_H_

/**
 * @file
 * Memtis baseline (Lee et al., SOSP'23), reimplemented from the paper's
 * description (§2.3, §3.2-3.3 of the HybridTier paper).
 *
 * Memtis is the state-of-the-art *frequency-based* tiering system:
 *  - PEBS samples increment a dedicated 16-byte-per-page counter record
 *    reached through the page table (the multi-level walk is why its
 *    metadata updates touch several cache lines);
 *  - a global hotness histogram over the counters yields the dynamic
 *    hotness threshold that exactly fills the fast tier;
 *  - all counters are cooled (halved) every cooling period C samples —
 *    the EMA freshness mechanism whose lag the paper analyzes in Fig 3;
 *  - pages whose counter crosses the threshold are promoted in batches;
 *    background watermark demotion scans evict sub-threshold pages.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/histogram.h"
#include "policies/policy.h"
#include "probstruct/exact_table.h"

namespace hybridtier {

/** Tunables for the Memtis baseline. */
struct MemtisConfig {
  /** Halve all counters every this many samples (the paper's C). */
  uint64_t cooling_period_samples = 150000;
  /** Flush pending promotions every this many samples. */
  uint64_t promo_batch_samples = 2048;
  /** Histogram cap for counter values. */
  uint32_t hist_max = 127;
  /** Demotion hysteresis divisor: victims need count < threshold/this. */
  uint32_t demote_hysteresis_divisor = 2;
  /** Begin demoting when fast free fraction falls below this. */
  double demote_trigger_frac = 0.02;
  /** Demote until fast free fraction reaches this. */
  double demote_target_frac = 0.04;
  /** Address-space units examined per maintenance tick. */
  uint64_t scan_units_per_tick = 8192;
};

/** Frequency-histogram tiering baseline. */
class MemtisPolicy : public TieringPolicy {
 public:
  explicit MemtisPolicy(const MemtisConfig& config = MemtisConfig{});

  void Bind(const PolicyContext& context) override;
  void OnSample(const SampleRecord& sample) override;
  /** Sample-driven: never observes the demand stream (OnAccess stays
   *  the inherited no-op), so per-access dispatch is skipped. */
  AccessInterest access_interest() const override {
    return AccessInterest::kNone;
  }

  void Tick(TimeNs now) override;
  size_t MetadataBytes() const override;
  const char* name() const override { return "Memtis"; }

  /** Per-page access-count estimate (the demotion-ordering signal). */
  uint32_t HotnessOf(PageId unit) const override {
    return counters_->Get(unit);
  }

  /** Current histogram-derived hotness threshold. */
  uint32_t hot_threshold() const { return hot_threshold_; }

  /** Cooling passes performed. */
  uint64_t coolings() const { return coolings_; }

  /** Read-only view of the hotness histogram. */
  const Histogram& histogram() const { return *histogram_; }

 private:
  /** Recomputes the hotness threshold from the histogram. */
  void UpdateThreshold();

  /** Demotes up to `needed` sub-threshold fast pages, stamping the
   *  batch with `reason`; returns the count. */
  uint64_t DemoteColdPages(uint64_t needed, TimeNs now,
                           MigrationReason reason);

  /** Emits the metadata lines one sampled update touches. */
  void TouchSampleMetadata(PageId unit, uint32_t bucket);

  /** Runs the incremental demotion scan if below the watermark. */
  void WatermarkDemotion(TimeNs now);

  MemtisConfig config_;
  std::unique_ptr<ExactCounterTable> counters_;
  std::unique_ptr<Histogram> histogram_;
  std::vector<PageId> pending_promotions_;
  uint64_t samples_seen_ = 0;
  uint64_t samples_at_last_flush_ = 0;
  uint64_t samples_at_last_cooling_ = 0;
  uint32_t hot_threshold_ = 1;
  uint64_t coolings_ = 0;
  PageId scan_cursor_ = 0;
  TraceEmitter::TrackId cooling_track_ = 0;  //!< Cooling-event track.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_MEMTIS_H_
