#ifndef HYBRIDTIER_POLICIES_POLICY_H_
#define HYBRIDTIER_POLICIES_POLICY_H_

/**
 * @file
 * Tiering-policy plug-in interface.
 *
 * The simulator owns the workload, the cache hierarchy, the tiered
 * memory, and migration cost accounting; a policy only *decides*. All
 * policies receive the same three signals the real systems get:
 *  - OnAccess: the demand-access stream, carrying only the information a
 *    kernel would have (tier served, hint-fault outcome). Policies must
 *    not inspect access contents beyond this — recency baselines use the
 *    fault/accessed-bit information, sample baselines ignore it.
 *  - OnSample: the PEBS/IBS sample stream (page + tier + time).
 *  - Tick: periodic maintenance (cooling, scans, watermark demotion).
 * Policies execute decisions through the MigrationEngine in the bound
 * context and report every metadata cache line they touch through the
 * MetadataTrafficSink so tiering cache overhead is measured, not
 * asserted.
 */

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "mem/migration.h"
#include "mem/page.h"
#include "mem/tiered_memory.h"
#include "sampling/sample.h"

namespace hybridtier {

/** Receives the cache-line addresses of tiering metadata accesses. */
class MetadataTrafficSink {
 public:
  virtual ~MetadataTrafficSink() = default;

  /** Records one tiering-owned access to the 64 B line at `line_addr`. */
  virtual void Touch(uint64_t line_addr) = 0;
};

/** A sink that drops all traffic (for tests and overhead-free runs). */
class NullTrafficSink : public MetadataTrafficSink {
 public:
  void Touch(uint64_t line_addr) override { (void)line_addr; }
};

/** Everything a policy may interact with, bound once before the run. */
struct PolicyContext {
  TieredMemory* memory = nullptr;
  MigrationEngine* migration = nullptr;
  MetadataTrafficSink* metadata_sink = nullptr;
  PageMode mode = PageMode::kRegular;
  uint64_t footprint_units = 0;      //!< Address-space size in units.
  uint64_t fast_capacity_units = 0;  //!< Fast-tier size in units.
};

/** Abstract tiering policy. */
class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;

  /** Binds the runtime context; called once before the first event. */
  virtual void Bind(const PolicyContext& context) { context_ = context; }

  /**
   * Observes one demand access to `unit` at `now`. `touch` carries the
   * signals an OS would see (tier, first touch, hint fault + latency).
   */
  virtual void OnAccess(PageId unit, const TouchResult& touch, TimeNs now) {
    (void)unit;
    (void)touch;
    (void)now;
  }

  /** Consumes one hardware access sample. */
  virtual void OnSample(const SampleRecord& sample) { (void)sample; }

  /** Periodic maintenance; called every simulator tick interval. */
  virtual void Tick(TimeNs now) { (void)now; }

  /**
   * The policy's current hotness estimate for `unit`, on the policy's
   * own scale (higher = hotter; only the ordering matters). Wrappers use
   * this to pick eviction victims coldest-first instead of in address
   * order. The default — no estimate — ranks every unit equally. This is
   * a simulator-internal read: implementations should not report
   * metadata traffic from it (the caller accounts for its own scan).
   */
  virtual uint32_t HotnessOf(PageId unit) const {
    (void)unit;
    return 0;
  }

  /** Current metadata footprint in bytes (paper Table 4 metric). */
  virtual size_t MetadataBytes() const = 0;

  /** Policy name as reported in tables (e.g. "Memtis"). */
  virtual const char* name() const = 0;

 protected:
  /** Bound context accessors for subclasses. */
  const PolicyContext& context() const { return context_; }
  TieredMemory& memory() const { return *context_.memory; }
  MigrationEngine& migration() const { return *context_.migration; }
  MetadataTrafficSink& sink() const { return *context_.metadata_sink; }

  PolicyContext context_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_POLICY_H_
