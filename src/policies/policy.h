#ifndef HYBRIDTIER_POLICIES_POLICY_H_
#define HYBRIDTIER_POLICIES_POLICY_H_

/**
 * @file
 * Tiering-policy plug-in interface.
 *
 * The simulator owns the workload, the cache hierarchy, the tiered
 * memory, and migration cost accounting; a policy only *decides*. All
 * policies receive the same three signals the real systems get:
 *  - OnAccess / OnAccessBatch: the demand-access stream, carrying only
 *    the information a kernel would have (tier served, hint-fault
 *    outcome). Policies must not inspect access contents beyond this —
 *    recency baselines use the fault/accessed-bit information, sample
 *    baselines ignore it.
 *  - OnSample: the PEBS/IBS sample stream (page + tier + time).
 *  - Tick: periodic maintenance (cooling, scans, watermark demotion).
 * Policies execute decisions through the MigrationEngine in the bound
 * context and report every metadata cache line they touch through the
 * MetadataTrafficCounter so tiering cache overhead is measured, not
 * asserted.
 *
 * Access dispatch is tiered by `access_interest()`:
 *  - kNone: the policy does not observe the demand stream at all (the
 *    sample-driven designs: HybridTier, Memtis, ARC/TwoQ). The hot loop
 *    skips dispatch entirely — zero per-access policy cost.
 *  - kBatched: the policy wants the stream but tolerates end-of-op
 *    delivery; the simulator buffers TouchEvents and hands the whole op
 *    to OnAccessBatch in one (devirtualized-per-batch) call.
 *  - kInline: the policy mutates placement inside OnAccess (TPP and
 *    AutoNUMA promote at fault time), so later accesses of the same op
 *    must observe the migration; the simulator calls OnAccess per
 *    access, exactly like the legacy path.
 */

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.h"
#include "fault/health.h"
#include "mem/migration.h"
#include "mem/page.h"
#include "mem/tiered_memory.h"
#include "sampling/sample.h"

namespace hybridtier {

/**
 * Accumulates the cache-line addresses of tiering metadata accesses.
 *
 * Concrete and final: the legacy virtual `MetadataTrafficSink::Touch`
 * cost an indirect call per metadata line on the sample hot path. Lines
 * are now appended to a flat buffer (an inlined bounds-checked store)
 * and the simulator replays the buffer into the shared cache hierarchy
 * at the next flush point — in exactly the order they were reported, so
 * the modeled LLC sees the same access sequence as before.
 *
 * When recording is off (overhead-free runs and unit tests that only
 * count traffic) lines are dropped and only the counter advances.
 */
class MetadataTrafficCounter {
 public:
  /** Records one tiering-owned access to the 64 B line at `line_addr`. */
  void Touch(uint64_t line_addr) {
    ++touches_;
    if (recording_) lines_.push_back(line_addr);
  }

  /** Buffer lines for replay (on) or count only (off). Default on. */
  void SetRecording(bool recording) { recording_ = recording; }

  /** Total Touch calls, recorded or not. */
  uint64_t touches() const { return touches_; }

  /** Buffered lines awaiting replay, in report order. */
  const std::vector<uint64_t>& lines() const { return lines_; }

  /** True when no lines await replay. */
  bool empty() const { return lines_.empty(); }

  /** Drops buffered lines; capacity is kept so steady state is
   *  allocation-free. The touch counter is not reset. */
  void Clear() { lines_.clear(); }

 private:
  std::vector<uint64_t> lines_;
  uint64_t touches_ = 0;
  bool recording_ = true;
};

/** How a policy wants to observe the demand-access stream. */
enum class AccessInterest : uint8_t {
  kNone = 0,  //!< OnAccess is the inherited no-op; skip dispatch.
  kBatched,   //!< Deliver per op via OnAccessBatch (deferral-safe).
  kInline,    //!< Call OnAccess per access (placement feedback).
};

/** One executed demand access, as delivered to OnAccessBatch. */
struct TouchEvent {
  PageId unit = 0;
  TouchResult touch;
  TimeNs now = 0;  //!< Virtual time the access issued (pre-latency).
};

/** Everything a policy may interact with, bound once before the run. */
struct PolicyContext {
  TieredMemory* memory = nullptr;
  MigrationEngine* migration = nullptr;
  MetadataTrafficCounter* metadata_sink = nullptr;
  /**
   * Read-only timing-model view, for endpoint-aware placement: a
   * policy may weigh hotness against `EndpointIdleLatency` +
   * `EndpointBacklog` (distance + congestion). Both reads are pure
   * functions of the simulated stream, so consulting them keeps runs
   * deterministic. Null in minimal unit-test contexts.
   */
  const PerfModel* perf = nullptr;
  /**
   * Optional trace sink (null = tracing off). Policies that emit
   * decision events (quota rebalances, cooling) register their tracks
   * in Bind and guard every emission on this pointer; virtual-time
   * event content must stay a pure function of the simulated stream so
   * traces keep the engine's bit-identity guarantees.
   */
  TraceEmitter* trace = nullptr;
  PageMode mode = PageMode::kRegular;
  uint64_t footprint_units = 0;      //!< Address-space size in units.
  uint64_t fast_capacity_units = 0;  //!< Fast-tier size in units.
};

/** Abstract tiering policy. */
class TieringPolicy {
 public:
  virtual ~TieringPolicy() = default;

  /** Binds the runtime context; called once before the first event. */
  virtual void Bind(const PolicyContext& context) { context_ = context; }

  /**
   * How this policy consumes the demand stream. kNone promises the
   * policy leaves OnAccess at the inherited no-op; kBatched promises
   * OnAccess has no feedback into same-op observable state — no
   * migrations, no protection changes, and no metadata traffic (the
   * batch path replays buffered metadata lines after the op's app
   * accesses, so sink traffic from OnAccess would reach the shared LLC
   * at a different interleaving than per-access dispatch and break the
   * bit-identity guarantee). Policies that do any of those inside
   * OnAccess must return kInline — the default, so unknown subclasses
   * keep exact legacy per-access semantics.
   */
  virtual AccessInterest access_interest() const {
    return AccessInterest::kInline;
  }

  /**
   * Observes one demand access to `unit` at `now`. `touch` carries the
   * signals an OS would see (tier, first touch, hint fault + latency).
   */
  virtual void OnAccess(PageId unit, const TouchResult& touch, TimeNs now) {
    (void)unit;
    (void)touch;
    (void)now;
  }

  /**
   * Delivers one op's accesses in a single call — the batch fast path:
   * one virtual dispatch per op instead of one per access. Events carry
   * the same (unit, touch, now) triples OnAccess would have seen, in
   * issue order.
   */
  void OnAccessBatch(std::span<const TouchEvent> events) {
    if (!events.empty()) OnAccessBatchImpl(events);
  }

  /** Consumes one hardware access sample. */
  virtual void OnSample(const SampleRecord& sample) { (void)sample; }

  /** Periodic maintenance; called every simulator tick interval. */
  virtual void Tick(TimeNs now) { (void)now; }

  /**
   * Notifies the policy that slow endpoint `endpoint` changed health
   * (fault injection, fault/fault_runtime.h). Called at the tick
   * boundary where the transition takes effect, before the same tick's
   * Tick(). Policies that plan placement over capacity (the fair-share
   * water-filler) re-plan over *effective* capacity here; the default
   * ignores faults entirely — reactive policies just see the changed
   * latencies and fault stalls.
   */
  virtual void OnEndpointHealth(uint32_t endpoint, EndpointHealth state,
                                TimeNs now) {
    (void)endpoint;
    (void)state;
    (void)now;
  }

  /**
   * Notifies the policy that pages were migrated *outside* its own
   * decisions (fault evacuation/spill batches issued by the fault
   * runtime). Policies that mirror occupancy incrementally must
   * invalidate their mirrors here. Default: no state to invalidate.
   */
  virtual void OnExternalMigration(TimeNs now) { (void)now; }

  /**
   * The policy's current hotness estimate for `unit`, on the policy's
   * own scale (higher = hotter; only the ordering matters). Wrappers use
   * this to pick eviction victims coldest-first instead of in address
   * order. The default — no estimate — ranks every unit equally. This is
   * a simulator-internal read: implementations should not report
   * metadata traffic from it (the caller accounts for its own scan).
   */
  virtual uint32_t HotnessOf(PageId unit) const {
    (void)unit;
    return 0;
  }

  /** Current metadata footprint in bytes (paper Table 4 metric). */
  virtual size_t MetadataBytes() const = 0;

  /** Policy name as reported in tables (e.g. "Memtis"). */
  virtual const char* name() const = 0;

 protected:
  /**
   * Batch delivery body; the default falls back to per-access OnAccess
   * so subclasses that only implement the per-access hook behave
   * identically under batch dispatch.
   */
  virtual void OnAccessBatchImpl(std::span<const TouchEvent> events) {
    for (const TouchEvent& event : events) {
      OnAccess(event.unit, event.touch, event.now);
    }
  }

  /** Bound context accessors for subclasses. */
  const PolicyContext& context() const { return context_; }
  TieredMemory& memory() const { return *context_.memory; }
  MigrationEngine& migration() const { return *context_.migration; }
  MetadataTrafficCounter& sink() const { return *context_.metadata_sink; }

  PolicyContext context_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_POLICIES_POLICY_H_
