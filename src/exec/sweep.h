#ifndef HYBRIDTIER_EXEC_SWEEP_H_
#define HYBRIDTIER_EXEC_SWEEP_H_

/**
 * @file
 * Parallel sweep execution over a declarative parameter grid.
 *
 * Every `bench/fig*` and `tab*` driver evaluates a config matrix —
 * (policy x workload x fast-tier ratio x tenant mix x seed) — whose
 * cells are independent `Simulation` runs. `SweepGrid` names the axes
 * of such a matrix, `SweepRunner` expands it into cells and executes
 * them on a `ThreadPool`, and the contract that makes this safe for CI
 * is *jobs-invariance*: the returned result vector is ordered by flat
 * cell index, every cell's RNG seed derives only from (base seed, cell
 * index), and no cell shares mutable state with another — so the
 * aggregated tables and CSV files are byte-identical whether the sweep
 * ran on 1 thread or 64.
 *
 * Cell order is row-major over the axes in declaration order (the first
 * axis varies slowest), matching the nested loops the drivers replaced.
 *
 * Per-cell seeds come from `DeriveCellSeed(base_seed, index)` — a
 * SplitMix64 mix, the same idiom `MakeMuxWorkload` uses for per-tenant
 * seeds. Drivers that compare cells in *pairs* (a policy against its
 * baseline on the same access stream) deliberately ignore the derived
 * seed and pin one shared seed across the paired cells; the derived
 * seed is for replicate axes and independent cells.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "exec/thread_pool.h"

namespace hybridtier {

/** Per-cell RNG seed: a SplitMix64 mix of the base seed + cell index. */
inline uint64_t DeriveCellSeed(uint64_t base_seed, uint64_t cell_index) {
  uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ULL * (cell_index + 1));
  return SplitMix64Next(state);
}

/** One named parameter axis of a sweep grid. */
struct SweepAxis {
  std::string name;                 //!< e.g. "policy", "ratio".
  std::vector<std::string> values;  //!< At least one value.
};

/** A declarative grid: the cross product of its axes. */
class SweepGrid {
 public:
  SweepGrid() = default;
  explicit SweepGrid(std::vector<SweepAxis> axes);

  /** Appends one axis (fatal on empty values or duplicate names). */
  void AddAxis(std::string name, std::vector<std::string> values);

  /** Number of cells (product of axis sizes; 0 for an empty grid). */
  size_t cell_count() const;

  /** The axes, in declaration (slowest-varying-first) order. */
  const std::vector<SweepAxis>& axes() const { return axes_; }

  /** Position of the named axis; fatal on unknown names. */
  size_t AxisIndex(const std::string& name) const;

  /**
   * Flat index of the cell at the given per-axis value positions
   * (row-major, first axis slowest). Fatal on rank/range mismatch.
   */
  size_t FlatIndex(const std::vector<size_t>& value_indices) const;

  /** Value position of axis `axis` within cell `cell_index`. */
  size_t ValueIndexAt(size_t cell_index, size_t axis) const;

 private:
  std::vector<SweepAxis> axes_;
};

/** One expanded cell, handed to the cell function. */
class SweepCell {
 public:
  SweepCell(const SweepGrid* grid, size_t index, uint64_t seed)
      : grid_(grid), index_(index), seed_(seed) {}

  /** Flat cell index in grid order. */
  size_t index() const { return index_; }

  /** Deterministically derived per-cell RNG seed (see DeriveCellSeed). */
  uint64_t seed() const { return seed_; }

  /** This cell's value of the named axis; fatal on unknown names. */
  const std::string& Get(const std::string& axis) const {
    const size_t a = grid_->AxisIndex(axis);
    return grid_->axes()[a].values[grid_->ValueIndexAt(index_, a)];
  }

  /** Position of this cell's value within the named axis. */
  size_t ValueIndex(const std::string& axis) const {
    return grid_->ValueIndexAt(index_, grid_->AxisIndex(axis));
  }

 private:
  const SweepGrid* grid_;
  size_t index_;
  uint64_t seed_;
};

/** Knobs of one sweep execution. */
struct SweepOptions {
  /** Worker threads; 0 = ThreadPool::DefaultWorkers(). */
  unsigned jobs = 0;
  /** Root of per-cell seed derivation. */
  uint64_t base_seed = 42;
  /** Label used in progress/wall-time lines. */
  std::string name = "sweep";
  /** Log the cells/jobs/wall-time summary line after the run. */
  bool report_wall_time = true;
  /**
   * When non-empty, write a Perfetto trace of per-cell *wall-clock*
   * spans here after the run. Unlike the per-cell simulated-time
   * telemetry, sweep-level traces are measurements of this machine —
   * they are deliberately exempt from the jobs-invariance byte-identity
   * contract (they change with thread count by construction).
   */
  std::string trace_out;
  /** When non-empty, write a sweep-level wall-time JSON summary here. */
  std::string metrics_out;
};

/** Wall-clock timing of one executed sweep cell (sweep telemetry). */
struct SweepCellTiming {
  uint64_t start_ns = 0;   //!< Nanoseconds after sweep start.
  uint64_t end_ns = 0;     //!< Nanoseconds after sweep start.
  size_t thread_hash = 0;  //!< Hash of the executing thread's id.
};

/**
 * Writes the sweep-level wall-clock trace (`options.trace_out`) and/or
 * wall-time summary JSON (`options.metrics_out`) for one finished run.
 * Worker tracks are numbered by the first cell index each distinct
 * thread executed, so track numbering is stable for a given schedule.
 */
void WriteSweepTelemetry(const SweepGrid& grid, const SweepOptions& options,
                         unsigned jobs, double wall_seconds,
                         const std::vector<SweepCellTiming>& timings);

/**
 * Expands a grid into cells and runs them, possibly in parallel.
 *
 * Results come back ordered by flat cell index regardless of the thread
 * count or completion order, so downstream aggregation and CSV emission
 * are jobs-invariant. The cell function must be safe to call from
 * multiple threads at once on *different* cells (a cell that builds its
 * own Workload/Policy/Simulation is; anything touching driver-global
 * mutable state is not).
 */
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = SweepOptions{})
      : options_(std::move(options)) {}

  /** Effective worker count for a sweep of `cells` cells. */
  unsigned EffectiveJobs(size_t cells) const {
    const unsigned jobs =
        options_.jobs == 0 ? ThreadPool::DefaultWorkers() : options_.jobs;
    return static_cast<unsigned>(
        std::min<size_t>(jobs, cells == 0 ? 1 : cells));
  }

  /**
   * Runs `fn(cell)` for every cell of `grid`; returns the results in
   * flat-index order. `fn` must not throw.
   */
  template <typename Fn>
  auto Run(const SweepGrid& grid, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const SweepCell&>> {
    using Result = std::invoke_result_t<Fn&, const SweepCell&>;
    static_assert(!std::is_same_v<Result, bool>,
                  "std::vector<bool> packs elements into shared bytes, so "
                  "concurrent per-cell writes would race — return int or "
                  "uint8_t from the cell function instead");
    const size_t cells = grid.cell_count();
    std::vector<Result> results(cells);
    const unsigned jobs = EffectiveJobs(cells);
    HT_INFORM("[sweep] ", options_.name, ": ", cells, " cells on ", jobs,
              jobs == 1 ? " worker" : " workers");
    // Per-cell wall-clock spans are only captured when a telemetry sink
    // was requested — the default sweep pays zero extra clock reads.
    const bool telemetry =
        !options_.trace_out.empty() || !options_.metrics_out.empty();
    std::vector<SweepCellTiming> timings(telemetry ? cells : 0);
    const auto start = std::chrono::steady_clock::now();
    const auto elapsed_ns = [start] {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - start)
              .count());
    };

    if (jobs <= 1) {
      // Inline path: no pool, cells run in index order on this thread.
      for (size_t i = 0; i < cells; ++i) {
        if (telemetry) timings[i].start_ns = elapsed_ns();
        results[i] = fn(SweepCell(&grid, i,
                                  DeriveCellSeed(options_.base_seed, i)));
        if (telemetry) timings[i].end_ns = elapsed_ns();
      }
    } else {
      ThreadPool pool(jobs);
      std::atomic<size_t> completed{0};
      // ~8 progress lines per sweep, however large the grid is.
      const size_t progress_every = std::max<size_t>(1, cells / 8);
      for (size_t i = 0; i < cells; ++i) {
        pool.Submit([this, &grid, &fn, &results, &completed, &timings,
                     &elapsed_ns, telemetry, cells, progress_every, i] {
          if (telemetry) {
            // Each task writes only its own timing slot: no race.
            timings[i].start_ns = elapsed_ns();
            timings[i].thread_hash =
                std::hash<std::thread::id>{}(std::this_thread::get_id());
          }
          results[i] =
              fn(SweepCell(&grid, i, DeriveCellSeed(options_.base_seed, i)));
          if (telemetry) timings[i].end_ns = elapsed_ns();
          const size_t done = completed.fetch_add(1) + 1;
          if (done % progress_every == 0 && done != cells) {
            HT_INFORM("[sweep] ", options_.name, ": ", done, "/", cells,
                      " cells done");
          }
        });
      }
      pool.Wait();
    }

    last_wall_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (options_.report_wall_time) {
      // Wall time goes through the logging layer (stderr) — never into
      // a CSV, since byte-identical CSV output across thread counts is
      // the subsystem's contract.
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.2f", last_wall_seconds_);
      HT_INFORM("[sweep] ", options_.name, ": ", cells, " cells, jobs=",
                jobs, ", wall ", wall, " s");
    }
    if (telemetry) {
      WriteSweepTelemetry(grid, options_, jobs, last_wall_seconds_,
                          timings);
    }
    return results;
  }

  /** Wall-clock seconds of the most recent Run. */
  double last_wall_seconds() const { return last_wall_seconds_; }

  /** The options this runner was built with. */
  const SweepOptions& options() const { return options_; }

 private:
  SweepOptions options_;
  double last_wall_seconds_ = 0.0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_EXEC_SWEEP_H_
