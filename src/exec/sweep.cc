#include "exec/sweep.h"

#include <fstream>
#include <unordered_map>

#include "obs/trace.h"

namespace hybridtier {

namespace {

/** "axis=value axis=value ..." label of one cell, in axis order. */
std::string CellLabel(const SweepGrid& grid, size_t cell_index) {
  std::string label;
  for (size_t a = 0; a < grid.axes().size(); ++a) {
    const SweepAxis& axis = grid.axes()[a];
    if (!label.empty()) label += ' ';
    label += axis.name;
    label += '=';
    label += axis.values[grid.ValueIndexAt(cell_index, a)];
  }
  return label;
}

/**
 * Numbers distinct executing threads by the first cell index each one
 * ran, so worker-track ids depend only on the observed schedule.
 */
std::vector<uint32_t> WorkerOfCell(
    const std::vector<SweepCellTiming>& timings) {
  std::vector<uint32_t> worker(timings.size(), 0);
  std::unordered_map<size_t, uint32_t> by_hash;
  for (size_t i = 0; i < timings.size(); ++i) {
    const auto [it, inserted] = by_hash.emplace(
        timings[i].thread_hash, static_cast<uint32_t>(by_hash.size()));
    worker[i] = it->second;
  }
  return worker;
}

}  // namespace

void WriteSweepTelemetry(const SweepGrid& grid, const SweepOptions& options,
                         unsigned jobs, double wall_seconds,
                         const std::vector<SweepCellTiming>& timings) {
  const std::vector<uint32_t> worker = WorkerOfCell(timings);
  uint32_t workers = 0;
  for (const uint32_t w : worker) workers = std::max(workers, w + 1);

  if (!options.trace_out.empty()) {
    TraceEmitter emitter(1, "sweep:" + options.name);
    std::vector<TraceEmitter::TrackId> worker_track(workers);
    for (uint32_t w = 0; w < workers; ++w) {
      worker_track[w] = emitter.Track("worker " + std::to_string(w));
    }
    emitter.Reserve(timings.size());
    for (size_t i = 0; i < timings.size(); ++i) {
      emitter.Span(worker_track[worker[i]],
                   emitter.Intern(CellLabel(grid, i)), timings[i].start_ns,
                   timings[i].end_ns,
                   {{"cell", static_cast<double>(i)},
                    {"seed", static_cast<double>(
                                 DeriveCellSeed(options.base_seed, i))}});
    }
    std::ofstream out(options.trace_out);
    if (!out) {
      HT_WARN("[sweep] cannot open trace file '", options.trace_out, "'");
    } else {
      emitter.WriteJson(out);
    }
  }

  if (!options.metrics_out.empty()) {
    std::ofstream out(options.metrics_out);
    if (!out) {
      HT_WARN("[sweep] cannot open metrics file '", options.metrics_out,
              "'");
      return;
    }
    char buf[64];
    out << "{\n  \"sweep\": \"" << options.name << "\",\n";
    out << "  \"cells\": " << timings.size() << ",\n";
    out << "  \"jobs\": " << jobs << ",\n";
    std::snprintf(buf, sizeof(buf), "%.6f", wall_seconds);
    out << "  \"wall_s\": " << buf << ",\n";
    out << "  \"cell_wall_ms\": [";
    for (size_t i = 0; i < timings.size(); ++i) {
      const double ms = static_cast<double>(timings[i].end_ns -
                                            timings[i].start_ns) /
                        1e6;
      std::snprintf(buf, sizeof(buf), "%.3f", ms);
      out << (i == 0 ? "" : ", ") << buf;
    }
    out << "],\n  \"cell_workers\": [";
    for (size_t i = 0; i < worker.size(); ++i) {
      out << (i == 0 ? "" : ", ") << worker[i];
    }
    out << "],\n  \"cell_labels\": [";
    for (size_t i = 0; i < timings.size(); ++i) {
      out << (i == 0 ? "" : ", ") << '"' << CellLabel(grid, i) << '"';
    }
    out << "]\n}\n";
  }
}

SweepGrid::SweepGrid(std::vector<SweepAxis> axes) {
  for (SweepAxis& axis : axes) {
    AddAxis(std::move(axis.name), std::move(axis.values));
  }
}

void SweepGrid::AddAxis(std::string name, std::vector<std::string> values) {
  HT_ASSERT(!values.empty(), "sweep axis '", name, "' has no values");
  for (const SweepAxis& axis : axes_) {
    HT_ASSERT(axis.name != name, "duplicate sweep axis '", name, "'");
  }
  axes_.push_back(SweepAxis{std::move(name), std::move(values)});
}

size_t SweepGrid::cell_count() const {
  if (axes_.empty()) return 0;
  size_t count = 1;
  for (const SweepAxis& axis : axes_) count *= axis.values.size();
  return count;
}

size_t SweepGrid::AxisIndex(const std::string& name) const {
  for (size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == name) return i;
  }
  HT_PANIC("unknown sweep axis '", name, "'");
}

size_t SweepGrid::FlatIndex(const std::vector<size_t>& value_indices) const {
  HT_ASSERT(value_indices.size() == axes_.size(),
            "FlatIndex wants one value index per axis (",
            axes_.size(), "), got ", value_indices.size());
  size_t index = 0;
  for (size_t a = 0; a < axes_.size(); ++a) {
    HT_ASSERT(value_indices[a] < axes_[a].values.size(), "axis '",
              axes_[a].name, "' has ", axes_[a].values.size(),
              " values, index ", value_indices[a], " is out of range");
    index = index * axes_[a].values.size() + value_indices[a];
  }
  return index;
}

size_t SweepGrid::ValueIndexAt(size_t cell_index, size_t axis) const {
  HT_ASSERT(axis < axes_.size(), "axis ", axis, " out of range");
  HT_ASSERT(cell_index < cell_count(), "cell ", cell_index,
            " out of range for a ", cell_count(), "-cell grid");
  // Row-major: the first axis varies slowest, so strip the faster axes'
  // strides off the tail of the flat index.
  size_t stride = 1;
  for (size_t a = axes_.size(); a-- > axis + 1;) {
    stride *= axes_[a].values.size();
  }
  return (cell_index / stride) % axes_[axis].values.size();
}

}  // namespace hybridtier
