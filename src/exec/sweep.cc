#include "exec/sweep.h"

namespace hybridtier {

SweepGrid::SweepGrid(std::vector<SweepAxis> axes) {
  for (SweepAxis& axis : axes) {
    AddAxis(std::move(axis.name), std::move(axis.values));
  }
}

void SweepGrid::AddAxis(std::string name, std::vector<std::string> values) {
  HT_ASSERT(!values.empty(), "sweep axis '", name, "' has no values");
  for (const SweepAxis& axis : axes_) {
    HT_ASSERT(axis.name != name, "duplicate sweep axis '", name, "'");
  }
  axes_.push_back(SweepAxis{std::move(name), std::move(values)});
}

size_t SweepGrid::cell_count() const {
  if (axes_.empty()) return 0;
  size_t count = 1;
  for (const SweepAxis& axis : axes_) count *= axis.values.size();
  return count;
}

size_t SweepGrid::AxisIndex(const std::string& name) const {
  for (size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == name) return i;
  }
  HT_PANIC("unknown sweep axis '", name, "'");
}

size_t SweepGrid::FlatIndex(const std::vector<size_t>& value_indices) const {
  HT_ASSERT(value_indices.size() == axes_.size(),
            "FlatIndex wants one value index per axis (",
            axes_.size(), "), got ", value_indices.size());
  size_t index = 0;
  for (size_t a = 0; a < axes_.size(); ++a) {
    HT_ASSERT(value_indices[a] < axes_[a].values.size(), "axis '",
              axes_[a].name, "' has ", axes_[a].values.size(),
              " values, index ", value_indices[a], " is out of range");
    index = index * axes_[a].values.size() + value_indices[a];
  }
  return index;
}

size_t SweepGrid::ValueIndexAt(size_t cell_index, size_t axis) const {
  HT_ASSERT(axis < axes_.size(), "axis ", axis, " out of range");
  HT_ASSERT(cell_index < cell_count(), "cell ", cell_index,
            " out of range for a ", cell_count(), "-cell grid");
  // Row-major: the first axis varies slowest, so strip the faster axes'
  // strides off the tail of the flat index.
  size_t stride = 1;
  for (size_t a = axes_.size(); a-- > axis + 1;) {
    stride *= axes_[a].values.size();
  }
  return (cell_index / stride) % axes_[axis].values.size();
}

}  // namespace hybridtier
