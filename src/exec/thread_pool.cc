#include "exec/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace hybridtier {

unsigned ThreadPool::DefaultWorkers() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = DefaultWorkers();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  HT_ASSERT(task != nullptr, "thread pool rejects empty tasks");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    HT_ASSERT(!stop_, "Submit after the pool began shutting down");
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock,
                 [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace hybridtier
