#ifndef HYBRIDTIER_EXEC_THREAD_POOL_H_
#define HYBRIDTIER_EXEC_THREAD_POOL_H_

/**
 * @file
 * Fixed-size worker pool for the sweep-execution subsystem.
 *
 * A deliberately small pool: N workers drain one FIFO queue. Sweep
 * cells are coarse (one full simulation each, milliseconds to minutes),
 * so work stealing and per-worker queues would buy nothing; the mutex
 * around the queue is cold. Determinism is the callers' job — the pool
 * guarantees only that every submitted task runs exactly once and that
 * `Wait` returns after all of them finished.
 */

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hybridtier {

/** Fixed worker pool draining one FIFO task queue. */
class ThreadPool {
 public:
  /** Starts `workers` threads (0 = DefaultWorkers()). */
  explicit ThreadPool(unsigned workers = 0);

  /** Drains the queue, then joins every worker. */
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /** Enqueues `task`; it runs on some worker in FIFO dispatch order. */
  void Submit(std::function<void()> task);

  /** Blocks until the queue is empty and no task is still running. */
  void Wait();

  /** Number of worker threads. */
  unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /** `hardware_concurrency`, floored at 1 (the value `0` advertises). */
  static unsigned DefaultWorkers();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_ready_;  //!< Signals queued work / stop.
  std::condition_variable all_idle_;    //!< Signals queue drained + idle.
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;  //!< Tasks currently executing.
  bool stop_ = false;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_EXEC_THREAD_POOL_H_
