#include "probstruct/packed_counters.h"

#include <bit>

#include "common/logging.h"

namespace hybridtier {

namespace {

/** Per-word mask that clears the bit shifted into each lane by >> 1. */
uint64_t HalvingMask(uint32_t bits) {
  switch (bits) {
    case 4:
      return 0x7777777777777777ULL;
    case 8:
      return 0x7f7f7f7f7f7f7f7fULL;
    case 16:
      return 0x7fff7fff7fff7fffULL;
    default:
      HT_PANIC("unsupported counter width ", bits);
  }
}

}  // namespace

PackedCounterArray::PackedCounterArray(size_t count, uint32_t bits)
    : count_(count), bits_(bits) {
  HT_ASSERT(bits == 4 || bits == 8 || bits == 16,
            "counter width must be 4, 8, or 16, got ", bits);
  HT_ASSERT(count > 0, "counter array must not be empty");
  max_value_ = (1u << bits_) - 1;
  per_word_ = 64 / bits_;
  words_.assign((count + per_word_ - 1) / per_word_, 0);
}

uint32_t PackedCounterArray::Get(size_t i) const {
  HT_ASSERT(i < count_, "counter index ", i, " out of range ", count_);
  const uint64_t word = words_[i / per_word_];
  const uint32_t shift = (i % per_word_) * bits_;
  return static_cast<uint32_t>((word >> shift) & max_value_);
}

void PackedCounterArray::Set(size_t i, uint32_t value) {
  HT_ASSERT(i < count_, "counter index ", i, " out of range ", count_);
  if (value > max_value_) value = max_value_;
  uint64_t& word = words_[i / per_word_];
  const uint32_t shift = (i % per_word_) * bits_;
  word &= ~(static_cast<uint64_t>(max_value_) << shift);
  word |= static_cast<uint64_t>(value) << shift;
}

uint32_t PackedCounterArray::SaturatingIncrement(size_t i) {
  const uint32_t current = Get(i);
  if (current >= max_value_) return current;
  Set(i, current + 1);
  return current + 1;
}

void PackedCounterArray::HalveAll() {
  const uint64_t mask = HalvingMask(bits_);
  for (auto& word : words_) word = (word >> 1) & mask;
}

void PackedCounterArray::Reset() {
  std::fill(words_.begin(), words_.end(), 0);
}

size_t PackedCounterArray::CountNonZero() const {
  size_t nonzero = 0;
  for (size_t i = 0; i < count_; ++i) nonzero += Get(i) != 0;
  return nonzero;
}

}  // namespace hybridtier
