#ifndef HYBRIDTIER_PROBSTRUCT_BLOCKED_CBF_H_
#define HYBRIDTIER_PROBSTRUCT_BLOCKED_CBF_H_

/**
 * @file
 * Blocked counting bloom filter (paper §4.2, Fig 8).
 *
 * All k counters of a key are confined to a single 64-byte cache line
 * ("block"): one hash selects the block, k derived hashes select slots
 * within it. A lookup or update therefore touches exactly one cache line
 * and incurs at most one cache miss, at the cost of a slightly higher
 * false-positive rate than the standard CBF. With 4-bit counters each
 * block holds 128 slots; with 16-bit counters (huge-page mode), 32 slots.
 */

#include <cstdint>
#include <vector>

#include "probstruct/estimator.h"
#include "probstruct/hash.h"
#include "probstruct/packed_counters.h"
#include "probstruct/sizing.h"

namespace hybridtier {

/** Cache-line-blocked counting bloom filter. */
class BlockedCountingBloomFilter : public FrequencyEstimator {
 public:
  /**
   * @param sizing total counter budget; rounded up to whole 64 B blocks.
   * @param seed   hash seed.
   */
  explicit BlockedCountingBloomFilter(const CbfSizing& sizing,
                                      uint64_t seed = 1);

  uint32_t Get(uint64_t key) const override;
  uint32_t Increment(uint64_t key) override;
  uint32_t IncrementWithOld(uint64_t key, uint32_t* old_count) override;
  void CoolByHalving() override;
  void Reset() override;
  size_t memory_bytes() const override { return counters_.memory_bytes(); }
  uint32_t max_count() const override { return counters_.max_value(); }
  void AppendTouchedLines(uint64_t key,
                          std::vector<uint64_t>* lines) const override;
  const char* name() const override { return "blocked-cbf"; }

  /** Number of 64-byte blocks. */
  size_t num_blocks() const { return num_blocks_; }

  /** Counter slots per block. */
  uint32_t slots_per_block() const { return slots_per_block_; }

  /** Number of hash functions (k). */
  uint32_t num_hashes() const { return num_hashes_; }

 private:
  /** Fills block index and the k in-block slot indices for `key`. */
  void Locate(uint64_t key, uint64_t* block_out, uint32_t* slots_out) const;

  PackedCounterArray counters_;
  size_t num_blocks_;
  uint32_t slots_per_block_;
  uint32_t num_hashes_;
  uint64_t seed_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_BLOCKED_CBF_H_
