#ifndef HYBRIDTIER_PROBSTRUCT_PACKED_COUNTERS_H_
#define HYBRIDTIER_PROBSTRUCT_PACKED_COUNTERS_H_

/**
 * @file
 * Bit-packed saturating counter array.
 *
 * HybridTier caps access counters at 4 bits for regular pages (max count
 * 15 — pages at the cap all belong in the fast tier, paper §3.2) and at
 * 16 bits for huge pages (§4.4). Counters are packed into 64-bit words;
 * the periodic "cooling" halving is a masked parallel shift over whole
 * words rather than a per-counter loop.
 */

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace hybridtier {

/** Dense array of `count` saturating counters of 4, 8, or 16 bits each. */
class PackedCounterArray {
 public:
  /**
   * @param count number of counters.
   * @param bits  counter width; must be 4, 8, or 16.
   */
  PackedCounterArray(size_t count, uint32_t bits);

  /** Returns counter `i`. */
  uint32_t Get(size_t i) const;

  /** Sets counter `i` to `value` (clamped to the counter maximum). */
  void Set(size_t i, uint32_t value);

  /** Increments counter `i`, saturating at max_value(); returns new value. */
  uint32_t SaturatingIncrement(size_t i);

  /** Halves every counter in the array (EMA cooling, decay factor 2). */
  void HalveAll();

  /** Sets every counter to zero. */
  void Reset();

  /** Number of counters. */
  size_t size() const { return count_; }

  /** Counter width in bits. */
  uint32_t bits() const { return bits_; }

  /** Largest representable counter value. */
  uint32_t max_value() const { return max_value_; }

  /** Bytes of backing storage. */
  size_t memory_bytes() const { return words_.size() * sizeof(uint64_t); }

  /** Number of counters with a nonzero value (O(n), for diagnostics). */
  size_t CountNonZero() const;

  /**
   * Index of the 64-byte cache line that counter `i` lives in, relative
   * to the start of the array. Used for metadata cache-traffic modeling.
   */
  uint64_t CacheLineOf(size_t i) const {
    return (static_cast<uint64_t>(i) * bits_) / (kCacheLineSize * 8);
  }

 private:
  size_t count_;
  uint32_t bits_;
  uint32_t max_value_;
  uint32_t per_word_;
  std::vector<uint64_t> words_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_PACKED_COUNTERS_H_
