#ifndef HYBRIDTIER_PROBSTRUCT_ESTIMATOR_H_
#define HYBRIDTIER_PROBSTRUCT_ESTIMATOR_H_

/**
 * @file
 * Abstract interface for access-frequency estimators.
 *
 * HybridTier's trackers are written against this interface so that the
 * paper's ablations can swap implementations: blocked CBF (the shipped
 * design), standard CBF (Fig 14 middle bar), and an exact per-page table
 * (Table 5 ground truth / Memtis metadata model).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hybridtier {

/** Saturating per-key access-count estimator with EMA cooling. */
class FrequencyEstimator {
 public:
  virtual ~FrequencyEstimator() = default;

  /** Returns the estimated access count of `key`. */
  virtual uint32_t Get(uint64_t key) const = 0;

  /** Records one access to `key`; returns the new estimated count. */
  virtual uint32_t Increment(uint64_t key) = 0;

  /**
   * Increment that also reports the estimate *before* the update in
   * `*old_count`. CBF implementations compute that minimum as part of
   * the update anyway, so overriding this halves the hot-path lookups;
   * the default falls back to Get + Increment.
   */
  virtual uint32_t IncrementWithOld(uint64_t key, uint32_t* old_count) {
    *old_count = Get(key);
    return Increment(key);
  }

  /** Halves every stored count (EMA cooling with decay factor 2). */
  virtual void CoolByHalving() = 0;

  /** Clears all state. */
  virtual void Reset() = 0;

  /** Bytes of metadata storage used by this estimator. */
  virtual size_t memory_bytes() const = 0;

  /** Largest count this estimator can represent. */
  virtual uint32_t max_count() const = 0;

  /**
   * Appends the indices of the 64-byte cache lines (relative to this
   * estimator's storage base) that an update for `key` touches. The
   * simulator replays these through the cache model to attribute
   * tiering-metadata cache traffic (paper §3.3).
   */
  virtual void AppendTouchedLines(uint64_t key,
                                  std::vector<uint64_t>* lines) const = 0;

  /** Short implementation name for reports. */
  virtual const char* name() const = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_ESTIMATOR_H_
