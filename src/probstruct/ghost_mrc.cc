#include "probstruct/ghost_mrc.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

namespace {
// 4-bit counters, the regular-page width HybridTier's frequency tracker
// uses: units pinned at the cap all belong in the fast tier, so finer
// resolution would not change the allocation.
constexpr uint32_t kGhostCounterBits = 4;
}  // namespace

GhostMrc::GhostMrc(uint64_t units)
    : counters_(units, kGhostCounterBits) {
  HT_ASSERT(units > 0, "ghost MRC needs a non-empty region");
  HT_ASSERT(counters_.max_value() < hist_.size(),
            "ghost histogram too small for counter width");
  hist_.fill(0);
  hist_[0] = units;
}

void GhostMrc::Increment(uint64_t unit) {
  const uint32_t prev = counters_.Get(unit);
  if (prev == counters_.max_value()) return;  // Saturated: no change.
  const uint32_t now = counters_.SaturatingIncrement(unit);
  --hist_[prev];
  ++hist_[now];
  if (prev == 0) ++demand_units_;
  ++total_hits_;
}

void GhostMrc::CoolByHalving() {
  counters_.HalveAll();
  std::array<uint64_t, 17> folded{};
  uint64_t hits = 0;
  for (uint32_t v = 0; v <= counters_.max_value(); ++v) {
    folded[v / 2] += hist_[v];
    hits += static_cast<uint64_t>(v / 2) * hist_[v];
  }
  hist_ = folded;
  total_hits_ = hits;
  demand_units_ = counters_.size() - hist_[0];
}

void GhostMrc::Reset() {
  counters_.Reset();
  hist_.fill(0);
  hist_[0] = counters_.size();
  demand_units_ = 0;
  total_hits_ = 0;
}

uint32_t GhostMrc::RankValue(uint64_t rank) const {
  uint64_t seen = 0;
  for (uint32_t v = counters_.max_value(); v > 0; --v) {
    seen += hist_[v];
    if (seen > rank) return v;
  }
  return 0;
}

uint64_t GhostMrc::CumulativeHits(uint64_t q) const {
  uint64_t hits = 0;
  uint64_t taken = 0;
  for (uint32_t v = counters_.max_value(); v > 0 && taken < q; --v) {
    const uint64_t take = std::min<uint64_t>(hist_[v], q - taken);
    hits += take * v;
    taken += take;
  }
  return hits;
}

void GhostMrc::AppendDemandSteps(std::vector<GhostDemandStep>* out) const {
  for (uint32_t v = counters_.max_value(); v > 0; --v) {
    if (hist_[v] == 0) continue;
    out->push_back(GhostDemandStep{.value = v, .units = hist_[v]});
  }
}

}  // namespace hybridtier
