#include "probstruct/ghost_mrc.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

namespace {
// 4-bit counters, the regular-page width HybridTier's frequency tracker
// uses: units pinned at the cap all belong in the fast tier, so finer
// resolution would not change the allocation.
constexpr uint32_t kGhostCounterBits = 4;

// Sample-table slots per expected sampled unit. The sampled count is a
// binomial with mean span/2^shift; doubling the mean (plus a fixed
// floor) puts the table many standard deviations past any realizable
// load factor, so linear probing stays short and inserts cannot fail.
uint64_t SampleTableCapacity(uint64_t units, uint32_t shift) {
  const uint64_t expected = (units >> shift) + 1;
  return std::max<uint64_t>(32, 2 * expected + 16);
}
}  // namespace

uint32_t GhostMrc::SampleShiftFor(uint64_t units, uint64_t budget) {
  if (budget == 0 || units <= budget) return 0;
  uint32_t shift = 0;
  while ((units >> shift) > budget) ++shift;
  return shift;
}

GhostMrc::GhostMrc(uint64_t units, uint32_t sample_shift)
    : units_(units),
      sample_shift_(sample_shift),
      counters_(sample_shift == 0 ? units
                                  : SampleTableCapacity(units, sample_shift),
                kGhostCounterBits) {
  HT_ASSERT(units > 0, "ghost MRC needs a non-empty region");
  HT_ASSERT(sample_shift < 32, "ghost sample shift out of range");
  HT_ASSERT(counters_.max_value() < hist_.size(),
            "ghost histogram too small for counter width");
  if (sample_shift_ > 0) {
    HT_ASSERT(units < kEmptyKey,
              "sampled ghost MRC keys are 32-bit region-local unit ids");
    keys_.assign(counters_.size(), kEmptyKey);
  }
  hist_.fill(0);
  hist_[0] = counters_.size();
}

uint64_t GhostMrc::SlotOf(uint64_t unit) {
  const uint64_t capacity = counters_.size();
  uint64_t slot = ReduceRange(Mix64(unit * 0x9e3779b97f4a7c15ULL), capacity);
  for (uint64_t probes = 0; probes < capacity; ++probes) {
    const uint32_t key = keys_[slot];
    if (key == static_cast<uint32_t>(unit)) return slot;
    if (key == kEmptyKey) {
      keys_[slot] = static_cast<uint32_t>(unit);
      return slot;
    }
    slot = slot + 1 == capacity ? 0 : slot + 1;
  }
  HT_FATAL("ghost MRC sample table overflow (capacity ", capacity, ")");
}

int64_t GhostMrc::Increment(uint64_t unit) {
  uint64_t slot = unit;
  if (sample_shift_ > 0) {
    if (!Admits(unit)) return -1;  // Outside the SHARDS sampled set.
    slot = SlotOf(unit);
  }
  const uint32_t prev = counters_.Get(slot);
  if (prev == counters_.max_value()) {
    return static_cast<int64_t>(slot);  // Saturated: no change.
  }
  const uint32_t now = counters_.SaturatingIncrement(slot);
  --hist_[prev];
  ++hist_[now];
  if (prev == 0) ++demand_units_;
  ++total_hits_;
  return static_cast<int64_t>(slot);
}

void GhostMrc::CoolByHalving() {
  counters_.HalveAll();
  std::array<uint64_t, 17> folded{};
  uint64_t hits = 0;
  for (uint32_t v = 0; v <= counters_.max_value(); ++v) {
    folded[v / 2] += hist_[v];
    hits += static_cast<uint64_t>(v / 2) * hist_[v];
  }
  hist_ = folded;
  total_hits_ = hits;
  demand_units_ = counters_.size() - hist_[0];
}

void GhostMrc::Reset() {
  counters_.Reset();
  if (sample_shift_ > 0) keys_.assign(keys_.size(), kEmptyKey);
  hist_.fill(0);
  hist_[0] = counters_.size();
  demand_units_ = 0;
  total_hits_ = 0;
}

uint32_t GhostMrc::RankValue(uint64_t rank) const {
  uint64_t seen = 0;
  for (uint32_t v = counters_.max_value(); v > 0; --v) {
    seen += hist_[v] << sample_shift_;
    if (seen > rank) return v;
  }
  return 0;
}

uint64_t GhostMrc::CumulativeHits(uint64_t q) const {
  uint64_t hits = 0;
  uint64_t taken = 0;
  for (uint32_t v = counters_.max_value(); v > 0 && taken < q; --v) {
    const uint64_t at_v = hist_[v] << sample_shift_;
    const uint64_t take = std::min<uint64_t>(at_v, q - taken);
    hits += take * v;
    taken += take;
  }
  return hits;
}

void GhostMrc::AppendDemandSteps(std::vector<GhostDemandStep>* out) const {
  for (uint32_t v = counters_.max_value(); v > 0; --v) {
    if (hist_[v] == 0) continue;
    out->push_back(
        GhostDemandStep{.value = v, .units = hist_[v] << sample_shift_});
  }
}

}  // namespace hybridtier
