#include "probstruct/exact_table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

ExactCounterTable::ExactCounterTable(size_t total_pages, uint32_t max_count)
    : entries_(total_pages), max_count_(max_count) {
  HT_ASSERT(total_pages > 0, "exact table must cover at least one page");
}

uint32_t ExactCounterTable::Get(uint64_t key) const {
  HT_ASSERT(key < entries_.size(), "page ", key, " outside metadata range ",
            entries_.size());
  return std::min(entries_[key].access_count, max_count_);
}

uint32_t ExactCounterTable::Increment(uint64_t key) {
  HT_ASSERT(key < entries_.size(), "page ", key, " outside metadata range ",
            entries_.size());
  PageMeta& meta = entries_[key];
  if (meta.access_count < UINT32_MAX) ++meta.access_count;
  return std::min(meta.access_count, max_count_);
}

void ExactCounterTable::CoolByHalving() {
  for (auto& meta : entries_) meta.access_count >>= 1;
}

void ExactCounterTable::Reset() {
  std::fill(entries_.begin(), entries_.end(), PageMeta{});
}

void ExactCounterTable::AppendTouchedLines(
    uint64_t key, std::vector<uint64_t>* lines) const {
  // The entry itself: 4 entries share a 64 B line.
  lines->push_back(key * sizeof(PageMeta) / kCacheLineSize);
}

uint64_t ExactCounterTable::RawCount(uint64_t key) const {
  HT_ASSERT(key < entries_.size(), "page ", key, " outside metadata range ",
            entries_.size());
  return entries_[key].access_count;
}

PageMeta& ExactCounterTable::MetaFor(uint64_t key) {
  HT_ASSERT(key < entries_.size(), "page ", key, " outside metadata range ",
            entries_.size());
  return entries_[key];
}

}  // namespace hybridtier
