#ifndef HYBRIDTIER_PROBSTRUCT_EXACT_TABLE_H_
#define HYBRIDTIER_PROBSTRUCT_EXACT_TABLE_H_

/**
 * @file
 * Exact per-page counter table.
 *
 * Models the "exact data structure" class from the paper (§3.2): Memtis
 * stores 16 bytes of metadata per 4 KiB page alongside `struct page`,
 * addressable by page frame number. We model it as a dense array of
 * 16-byte entries indexed by page id. It guarantees exactness and is the
 * ground truth for CBF accuracy measurements (Table 5), at the cost of
 * metadata that scales with *total* memory instead of fast-tier size.
 */

#include <cstdint>
#include <vector>

#include "probstruct/estimator.h"

namespace hybridtier {

/** 16-byte per-page metadata record (Memtis-style). */
struct PageMeta {
  uint32_t access_count = 0;  //!< EMA access counter.
  uint32_t cooling_epoch = 0; //!< Last cooling epoch applied.
  uint64_t last_access_ns = 0;//!< Most recent sampled access time.
};
static_assert(sizeof(PageMeta) == 16, "PageMeta must be 16 bytes per page");

/** Dense exact counter table: one PageMeta per page in the system. */
class ExactCounterTable : public FrequencyEstimator {
 public:
  /**
   * @param total_pages number of pages metadata is allocated for; like
   *        Memtis, the table covers *all* memory, not just the fast tier.
   * @param max_count   saturation cap applied to Get/Increment results so
   *        the table can stand in for a CBF in accuracy comparisons; use
   *        UINT32_MAX for a plain exact counter.
   */
  explicit ExactCounterTable(size_t total_pages,
                             uint32_t max_count = UINT32_MAX);

  uint32_t Get(uint64_t key) const override;
  uint32_t Increment(uint64_t key) override;
  void CoolByHalving() override;
  void Reset() override;
  size_t memory_bytes() const override {
    return entries_.size() * sizeof(PageMeta);
  }
  uint32_t max_count() const override { return max_count_; }
  void AppendTouchedLines(uint64_t key,
                          std::vector<uint64_t>* lines) const override;
  const char* name() const override { return "exact"; }

  /** Full (unsaturated) count for `key`. */
  uint64_t RawCount(uint64_t key) const;

  /** Mutable metadata record for `key` (for policies needing extra state). */
  PageMeta& MetaFor(uint64_t key);

  /** Number of pages covered. */
  size_t size() const { return entries_.size(); }

 private:
  std::vector<PageMeta> entries_;
  uint32_t max_count_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_EXACT_TABLE_H_
