#ifndef HYBRIDTIER_PROBSTRUCT_CBF_H_
#define HYBRIDTIER_PROBSTRUCT_CBF_H_

/**
 * @file
 * Standard counting bloom filter (paper §4.2, Fig 7).
 *
 * GET returns the minimum of the k counters a key maps to; INCREMENT uses
 * the *conservative update* rule, incrementing only the counters currently
 * equal to that minimum. Counters saturate at the width maximum and are
 * cooled by a global halving pass.
 *
 * The k counters of a key land at k independent positions in the array,
 * so a lookup can touch up to k distinct cache lines — the locality
 * weakness that the blocked variant (blocked_cbf.h) fixes.
 */

#include <cstdint>
#include <vector>

#include "probstruct/estimator.h"
#include "probstruct/hash.h"
#include "probstruct/packed_counters.h"
#include "probstruct/sizing.h"

namespace hybridtier {

/** Counting bloom filter with conservative-update increments. */
class CountingBloomFilter : public FrequencyEstimator {
 public:
  /**
   * @param sizing counter count / hash count / counter width bundle.
   * @param seed   hash seed (vary to get independent filters).
   */
  explicit CountingBloomFilter(const CbfSizing& sizing, uint64_t seed = 1);

  uint32_t Get(uint64_t key) const override;
  uint32_t Increment(uint64_t key) override;
  uint32_t IncrementWithOld(uint64_t key, uint32_t* old_count) override;
  void CoolByHalving() override;
  void Reset() override;
  size_t memory_bytes() const override { return counters_.memory_bytes(); }
  uint32_t max_count() const override { return counters_.max_value(); }
  void AppendTouchedLines(uint64_t key,
                          std::vector<uint64_t>* lines) const override;
  const char* name() const override { return "cbf"; }

  /** Number of counters in the filter (m). */
  size_t num_counters() const { return counters_.size(); }

  /** Number of hash functions (k). */
  uint32_t num_hashes() const { return num_hashes_; }

 private:
  /** Computes the k counter indices for `key` into `indices_out`. */
  void IndicesFor(uint64_t key, uint64_t* indices_out) const;

  PackedCounterArray counters_;
  uint32_t num_hashes_;
  uint64_t seed_;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_CBF_H_
