#ifndef HYBRIDTIER_PROBSTRUCT_GHOST_MRC_H_
#define HYBRIDTIER_PROBSTRUCT_GHOST_MRC_H_

/**
 * @file
 * Shadow-sampled miss-ratio-curve estimate over one tenant's region.
 *
 * A `GhostMrc` is the ghost structure behind the marginal-utility quota
 * controller: it consumes the tenant's sampled accesses (the shadow of
 * the real access stream) into 4-bit saturating counters — the same
 * packed-counter substrate HybridTier's trackers use — plus an
 * incrementally maintained histogram of counter values. Because the
 * counters survive cooling as a halving EMA, the value distribution
 * approximates "sampled hits per window" of each unit, and reading it
 * off in rank order answers the allocator's question: if this tenant
 * held its q hottest units in the fast tier, how many sampled hits per
 * window would the q-th unit contribute (`RankValue`), and how many
 * would the whole allocation capture (`CumulativeHits`)? A streaming
 * tenant whose pages are touched once concentrates its mass at counter
 * value 1, so its curve flattens immediately — exactly the signal
 * per-unit hit *density* gets wrong.
 *
 * Two storage modes share that read interface:
 *
 *  - **Exact** (`sample_shift == 0`): one dense counter per unit of the
 *    region, as in the original structure. Memory is O(span).
 *  - **SHARDS-sampled** (`sample_shift > 0`): spatial hash sampling in
 *    the style of SHARDS — a unit is admitted iff the top `sample_shift`
 *    bits of a fixed 64-bit mix of its id are zero, i.e. with
 *    probability 2^-shift under a *fixed* threshold, so the sampled set
 *    is a deterministic function of the region alone (bit-identical
 *    runs regardless of timing or thread count). Admitted units live in
 *    a small open-addressing table keyed by unit id; every access to an
 *    admitted unit is counted (per-unit values stay unscaled), and the
 *    curve readers scale *unit counts* by 2^shift so demand curves,
 *    rank values, and cumulative hits are estimates over the full
 *    region. Memory is O(span >> shift) — about 100x smaller at
 *    shift 7, ~1000x at shift 10.
 *
 * The histogram is maintained in O(1) per update and O(max_count) per
 * cooling pass, so rebalance reads never rescan the counter array.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "probstruct/hash.h"
#include "probstruct/packed_counters.h"

namespace hybridtier {

/** One step of a descending demand curve: `units` units at `value`. */
struct GhostDemandStep {
  uint32_t value = 0;   //!< Sampled hits per window of each unit.
  uint64_t units = 0;   //!< Units sitting at exactly this value.
};

/** Shadow-sampled per-unit hotness ranking with EMA cooling. */
class GhostMrc {
 public:
  /**
   * @param units        tracked units (the tenant's region span).
   * @param sample_shift SHARDS sampling rate exponent: 0 = exact dense
   *                     counters; k > 0 admits units with probability
   *                     2^-k under a fixed spatial hash threshold.
   */
  explicit GhostMrc(uint64_t units, uint32_t sample_shift = 0);

  /**
   * Smallest shift that keeps the expected sampled-unit count of a
   * `units`-sized region within `budget` (0 when the region already
   * fits, i.e. small tenants stay exact).
   */
  static uint32_t SampleShiftFor(uint64_t units, uint64_t budget);

  /**
   * Records one sampled access to local unit `unit` (region-relative).
   * Returns the storage index whose counter was touched, or -1 when the
   * unit is outside the sampled set (SHARDS rejection) — callers model
   * metadata traffic only for accepted updates via `CacheLineOfSlot`.
   */
  int64_t Increment(uint64_t unit);

  /** True iff `unit` falls in the sampled set (always true when exact). */
  bool Admits(uint64_t unit) const {
    return sample_shift_ == 0 ||
           (Mix64(unit ^ kShardsSeed) >> (64 - sample_shift_)) == 0;
  }

  /** Halves every counter (EMA cooling across rebalance windows). */
  void CoolByHalving();

  /** Clears all counters, the sample table, and the histogram. */
  void Reset();

  /**
   * Estimated hits per window contributed by the `rank`-th hottest unit
   * (0-based); 0 when fewer than `rank+1` units were ever sampled. This
   * is the marginal utility of the (rank+1)-th fast unit. Under SHARDS
   * sampling each admitted unit stands for 2^shift units of its value.
   */
  uint32_t RankValue(uint64_t rank) const;

  /** Estimated hits captured by holding the `q` hottest units. */
  uint64_t CumulativeHits(uint64_t q) const;

  /** Estimated units with a nonzero counter (the sampled working set). */
  uint64_t demand_units() const { return demand_units_ << sample_shift_; }

  /** Estimated total hits represented (scaled under sampling). */
  uint64_t total_hits() const { return total_hits_ << sample_shift_; }

  /**
   * The demand curve as descending steps: for each counter value v from
   * the maximum down to 1, how many (estimated) units sit at exactly v.
   * Appends to `out`; steps with zero units are skipped.
   */
  void AppendDemandSteps(std::vector<GhostDemandStep>* out) const;

  /** Tracked units (the region span, not the table capacity). */
  uint64_t units() const { return units_; }

  /** SHARDS sampling rate exponent (0 = exact). */
  uint32_t sample_shift() const { return sample_shift_; }

  /** Counter slots actually backed by storage. */
  uint64_t capacity() const { return counters_.size(); }

  /** Bytes of backing storage (counters + sample-table keys). */
  size_t memory_bytes() const {
    return counters_.memory_bytes() + keys_.capacity() * sizeof(uint32_t);
  }

  /** Largest representable per-unit value. */
  uint32_t max_value() const { return counters_.max_value(); }

  /**
   * Index of the 64-byte cache line (relative to this structure's
   * storage base) that the counter at storage index `slot` lives in,
   * for metadata-traffic accounting. `slot` is a value returned by
   * `Increment` (in exact mode it equals the unit id).
   */
  uint64_t CacheLineOfSlot(uint64_t slot) const {
    return counters_.CacheLineOf(slot);
  }

 private:
  /** Fixed SHARDS admission seed: sampling is a pure function of unit id. */
  static constexpr uint64_t kShardsSeed = 0x51ab7158c9f1d0a3ULL;

  /** Sentinel for an empty sample-table slot. */
  static constexpr uint32_t kEmptyKey = 0xffffffffu;

  /** Storage slot of an admitted `unit` (finds or inserts); fatal on
   *  table overflow, which the 2x capacity margin makes unreachable. */
  uint64_t SlotOf(uint64_t unit);

  uint64_t units_;
  uint32_t sample_shift_;
  PackedCounterArray counters_;
  /** Sampled mode only: open-addressing unit-id keys, kEmptyKey = free. */
  std::vector<uint32_t> keys_;
  /** hist_[v] = storage slots whose counter currently equals v. */
  std::array<uint64_t, 17> hist_;
  uint64_t demand_units_ = 0;  //!< Raw (unscaled) nonzero slots.
  uint64_t total_hits_ = 0;    //!< Raw (unscaled) counter-value sum.
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_GHOST_MRC_H_
