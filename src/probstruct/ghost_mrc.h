#ifndef HYBRIDTIER_PROBSTRUCT_GHOST_MRC_H_
#define HYBRIDTIER_PROBSTRUCT_GHOST_MRC_H_

/**
 * @file
 * Shadow-sampled miss-ratio-curve estimate over one tenant's region.
 *
 * A `GhostMrc` is the ghost structure behind the marginal-utility quota
 * controller: it consumes the tenant's sampled accesses (the shadow of
 * the real access stream) into a dense array of 4-bit saturating
 * counters — the same packed-counter substrate HybridTier's trackers
 * use — plus an incrementally maintained histogram of counter values.
 * Because the counters survive cooling as a halving EMA, the value
 * distribution approximates "sampled hits per window" of each unit, and
 * reading it off in rank order answers the allocator's question: if this
 * tenant held its q hottest units in the fast tier, how many sampled
 * hits per window would the q-th unit contribute (`RankValue`), and how
 * many would the whole allocation capture (`CumulativeHits`)? A
 * streaming tenant whose pages are touched once concentrates its mass at
 * counter value 1, so its curve flattens immediately — exactly the
 * signal per-unit hit *density* gets wrong.
 *
 * The histogram is maintained in O(1) per update and O(max_count) per
 * cooling pass, so rebalance reads never rescan the counter array.
 */

#include <array>
#include <cstdint>
#include <vector>

#include "probstruct/packed_counters.h"

namespace hybridtier {

/** One step of a descending demand curve: `units` units at `value`. */
struct GhostDemandStep {
  uint32_t value = 0;   //!< Sampled hits per window of each unit.
  uint64_t units = 0;   //!< Units sitting at exactly this value.
};

/** Shadow-sampled per-unit hotness ranking with EMA cooling. */
class GhostMrc {
 public:
  /** @param units tracked units (the tenant's region span). */
  explicit GhostMrc(uint64_t units);

  /** Records one sampled access to local unit `unit` (region-relative). */
  void Increment(uint64_t unit);

  /** Halves every counter (EMA cooling across rebalance windows). */
  void CoolByHalving();

  /** Clears all counters and the histogram. */
  void Reset();

  /**
   * Sampled hits per window contributed by the `rank`-th hottest unit
   * (0-based); 0 when fewer than `rank+1` units were ever sampled. This
   * is the marginal utility of the (rank+1)-th fast unit.
   */
  uint32_t RankValue(uint64_t rank) const;

  /** Total sampled hits captured by holding the `q` hottest units. */
  uint64_t CumulativeHits(uint64_t q) const;

  /** Units with a nonzero counter (the sampled working set). */
  uint64_t demand_units() const { return demand_units_; }

  /** Sum of all counter values (sampled hits represented). */
  uint64_t total_hits() const { return total_hits_; }

  /**
   * The demand curve as descending steps: for each counter value v from
   * the maximum down to 1, how many units sit at exactly v. Appends to
   * `out`; steps with zero units are skipped.
   */
  void AppendDemandSteps(std::vector<GhostDemandStep>* out) const;

  /** Tracked units. */
  uint64_t units() const { return counters_.size(); }

  /** Bytes of backing storage. */
  size_t memory_bytes() const { return counters_.memory_bytes(); }

  /** Largest representable per-unit value. */
  uint32_t max_value() const { return counters_.max_value(); }

  /**
   * Index of the 64-byte cache line (relative to this structure's
   * storage base) an update of `unit` touches, for metadata-traffic
   * accounting.
   */
  uint64_t CacheLineOf(uint64_t unit) const {
    return counters_.CacheLineOf(unit);
  }

 private:
  PackedCounterArray counters_;
  /** hist_[v] = units whose counter currently equals v. */
  std::array<uint64_t, 17> hist_;
  uint64_t demand_units_ = 0;
  uint64_t total_hits_ = 0;
};

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_GHOST_MRC_H_
