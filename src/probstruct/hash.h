#ifndef HYBRIDTIER_PROBSTRUCT_HASH_H_
#define HYBRIDTIER_PROBSTRUCT_HASH_H_

/**
 * @file
 * 64-bit mixing hashes used by the counting bloom filters.
 *
 * k hash values are derived from two independent base hashes using the
 * Kirsch-Mitzenmacher construction g_i(x) = h1(x) + i * h2(x), which
 * preserves bloom-filter false-positive guarantees while needing only two
 * full hash computations per key.
 */

#include <cstdint>

namespace hybridtier {

/** SplitMix64 finalizer: a strong 64-bit bit mixer. */
inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/** Two independent base hashes of a key under a seed. */
struct HashPair {
  uint64_t h1;
  uint64_t h2;
};

/** Computes the base hash pair for `key` under `seed`. */
inline HashPair HashKey(uint64_t key, uint64_t seed = 0) {
  const uint64_t a = Mix64(key ^ (seed * 0x9e3779b97f4a7c15ULL));
  uint64_t b = Mix64(a ^ key ^ 0xd1b54a32d192ed03ULL);
  // h2 must be odd so successive g_i values cycle through all residues.
  b |= 1;
  return {a, b};
}

/** Returns the i-th derived hash g_i = h1 + i * h2. */
inline uint64_t DerivedHash(const HashPair& hp, uint32_t i) {
  return hp.h1 + static_cast<uint64_t>(i) * hp.h2;
}

/**
 * Maps a 64-bit hash onto [0, bound) without modulo bias using the
 * multiply-shift range reduction.
 */
inline uint64_t ReduceRange(uint64_t hash, uint64_t bound) {
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(hash) * bound) >> 64);
}

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_HASH_H_
