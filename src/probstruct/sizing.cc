#include "probstruct/sizing.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace hybridtier {

double BloomCountersPerElement(uint32_t num_hashes, double error_rate) {
  HT_ASSERT(num_hashes > 0, "need at least one hash function");
  HT_ASSERT(error_rate > 0.0 && error_rate < 1.0,
            "error rate must be in (0,1), got ", error_rate);
  const double k = static_cast<double>(num_hashes);
  return -k / std::log(1.0 - std::exp(std::log(error_rate) / k));
}

size_t BloomCounterCount(size_t num_elements, uint32_t num_hashes,
                         double error_rate) {
  const double r = BloomCountersPerElement(num_hashes, error_rate);
  const double m = std::ceil(static_cast<double>(num_elements) * r);
  return std::max<size_t>(static_cast<size_t>(m), 64);
}

double BloomFalsePositiveRate(size_t num_counters, size_t num_elements,
                              uint32_t num_hashes) {
  if (num_counters == 0) return 1.0;
  const double k = static_cast<double>(num_hashes);
  const double fill = static_cast<double>(num_elements) * k /
                      static_cast<double>(num_counters);
  return std::pow(1.0 - std::exp(-fill), k);
}

CbfSizing FrequencyCbfSizing(size_t fast_tier_pages, uint32_t counter_bits,
                             uint32_t num_hashes, double error_rate) {
  return CbfSizing{
      .num_counters =
          BloomCounterCount(fast_tier_pages, num_hashes, error_rate),
      .num_hashes = num_hashes,
      .counter_bits = counter_bits,
  };
}

CbfSizing MomentumCbfSizing(size_t fast_tier_pages, uint32_t counter_bits,
                            uint32_t num_hashes, double error_rate) {
  // The 1024-element floor only matters for scaled-down simulations: a
  // momentum filter below a few blocks saturates and classifies every
  // page as momentum-hot. At the paper's fast-tier sizes (millions of
  // pages) fast/128 is far above the floor.
  const size_t elements =
      std::max<size_t>(fast_tier_pages / kMomentumSizeDivisor, 1024);
  return CbfSizing{
      .num_counters = BloomCounterCount(elements, num_hashes, error_rate),
      .num_hashes = num_hashes,
      .counter_bits = counter_bits,
  };
}

}  // namespace hybridtier
