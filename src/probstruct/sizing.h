#ifndef HYBRIDTIER_PROBSTRUCT_SIZING_H_
#define HYBRIDTIER_PROBSTRUCT_SIZING_H_

/**
 * @file
 * Bloom-filter sizing formulas (paper §4.2).
 *
 * HybridTier sizes its CBFs with the well-established formulas
 *   r = -k / ln(1 - exp(ln(p) / k))      counters per element
 *   m = ceil(n * r)                      total counters
 * with k = 4 hash functions, p = 0.001 tracking-error probability, and
 * n = the number of fast-tier pages. The momentum CBF is provisioned for
 * n / 128 elements (its aggressive cooling keeps its live set small).
 */

#include <cstddef>
#include <cstdint>

namespace hybridtier {

/** HybridTier's default number of hash functions (paper: k = 4). */
inline constexpr uint32_t kDefaultNumHashes = 4;

/** HybridTier's default tracking-error probability (paper: p = 0.001). */
inline constexpr double kDefaultErrorRate = 0.001;

/** Factor by which the momentum CBF is smaller than the frequency CBF. */
inline constexpr uint64_t kMomentumSizeDivisor = 128;

/** Returns r, the number of counters per inserted element. */
double BloomCountersPerElement(uint32_t num_hashes, double error_rate);

/** Returns m = ceil(n * r), the total counter count for n elements. */
size_t BloomCounterCount(size_t num_elements, uint32_t num_hashes,
                         double error_rate);

/**
 * Returns the theoretical false-positive rate of a bloom filter with m
 * counters, n inserted elements, and k hashes: (1 - e^{-kn/m})^k.
 */
double BloomFalsePositiveRate(size_t num_counters, size_t num_elements,
                              uint32_t num_hashes);

/** Sizing bundle for one CBF instance. */
struct CbfSizing {
  size_t num_counters;   //!< m.
  uint32_t num_hashes;   //!< k.
  uint32_t counter_bits; //!< 4 for regular pages, 16 for huge pages.
};

/**
 * Computes HybridTier's frequency-tracker CBF sizing for a fast tier of
 * `fast_tier_pages` pages (paper defaults: k=4, p=0.001, 4-bit counters).
 */
CbfSizing FrequencyCbfSizing(size_t fast_tier_pages,
                             uint32_t counter_bits = 4,
                             uint32_t num_hashes = kDefaultNumHashes,
                             double error_rate = kDefaultErrorRate);

/** Computes the momentum-tracker sizing (128x fewer elements). */
CbfSizing MomentumCbfSizing(size_t fast_tier_pages,
                            uint32_t counter_bits = 4,
                            uint32_t num_hashes = kDefaultNumHashes,
                            double error_rate = kDefaultErrorRate);

}  // namespace hybridtier

#endif  // HYBRIDTIER_PROBSTRUCT_SIZING_H_
