#include "probstruct/cbf.h"

#include <algorithm>

#include "common/logging.h"

namespace hybridtier {

namespace {
/** Upper bound on k so index buffers can live on the stack. */
constexpr uint32_t kMaxHashes = 16;
}  // namespace

CountingBloomFilter::CountingBloomFilter(const CbfSizing& sizing,
                                         uint64_t seed)
    : counters_(sizing.num_counters, sizing.counter_bits),
      num_hashes_(sizing.num_hashes),
      seed_(seed) {
  HT_ASSERT(num_hashes_ >= 1 && num_hashes_ <= kMaxHashes,
            "hash count must be in [1,16], got ", num_hashes_);
}

void CountingBloomFilter::IndicesFor(uint64_t key,
                                     uint64_t* indices_out) const {
  const HashPair hp = HashKey(key, seed_);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    indices_out[i] = ReduceRange(DerivedHash(hp, i), counters_.size());
  }
}

uint32_t CountingBloomFilter::Get(uint64_t key) const {
  uint64_t indices[kMaxHashes];
  IndicesFor(key, indices);
  uint32_t min_count = counters_.max_value();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(indices[i]));
  }
  return min_count;
}

uint32_t CountingBloomFilter::Increment(uint64_t key) {
  uint32_t old_count;
  return IncrementWithOld(key, &old_count);
}

uint32_t CountingBloomFilter::IncrementWithOld(uint64_t key,
                                               uint32_t* old_count) {
  uint64_t indices[kMaxHashes];
  IndicesFor(key, indices);
  uint32_t min_count = counters_.max_value();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(indices[i]));
  }
  *old_count = min_count;
  if (min_count >= counters_.max_value()) return min_count;
  // Conservative update: only counters at the minimum move, which keeps
  // the estimate at min() tight in the presence of collisions.
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    if (counters_.Get(indices[i]) == min_count) {
      counters_.Set(indices[i], min_count + 1);
    }
  }
  return min_count + 1;
}

void CountingBloomFilter::CoolByHalving() { counters_.HalveAll(); }

void CountingBloomFilter::Reset() { counters_.Reset(); }

void CountingBloomFilter::AppendTouchedLines(
    uint64_t key, std::vector<uint64_t>* lines) const {
  uint64_t indices[kMaxHashes];
  IndicesFor(key, indices);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    const uint64_t line = counters_.CacheLineOf(indices[i]);
    // Dedup adjacent duplicates cheaply; exact dedup is not required for
    // the cache model (re-touching a line is a hit anyway).
    if (std::find(lines->begin(), lines->end(), line) == lines->end()) {
      lines->push_back(line);
    }
  }
}

}  // namespace hybridtier
