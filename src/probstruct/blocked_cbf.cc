#include "probstruct/blocked_cbf.h"

#include <algorithm>

#include "common/logging.h"
#include "common/units.h"

namespace hybridtier {

namespace {
constexpr uint32_t kMaxHashes = 16;
}  // namespace

BlockedCountingBloomFilter::BlockedCountingBloomFilter(
    const CbfSizing& sizing, uint64_t seed)
    : counters_(
          // Round the counter budget up to whole 64-byte blocks.
          [&] {
            const uint32_t slots =
                static_cast<uint32_t>(kCacheLineSize * 8 /
                                      sizing.counter_bits);
            const size_t blocks =
                (sizing.num_counters + slots - 1) / slots;
            return std::max<size_t>(blocks, 1) * slots;
          }(),
          sizing.counter_bits),
      num_hashes_(sizing.num_hashes),
      seed_(seed) {
  slots_per_block_ =
      static_cast<uint32_t>(kCacheLineSize * 8 / sizing.counter_bits);
  num_blocks_ = counters_.size() / slots_per_block_;
  HT_ASSERT(num_hashes_ >= 1 && num_hashes_ <= kMaxHashes,
            "hash count must be in [1,16], got ", num_hashes_);
  HT_ASSERT(num_hashes_ <= slots_per_block_,
            "more hashes than slots per block");
}

void BlockedCountingBloomFilter::Locate(uint64_t key, uint64_t* block_out,
                                        uint32_t* slots_out) const {
  const HashPair hp = HashKey(key, seed_);
  // The block comes from h1; in-block slots come from the derived stream.
  *block_out = ReduceRange(hp.h1, num_blocks_);
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    // Slot collisions within a block are permitted by design (paper §4.2:
    // "the k counters can be mapped to any counters within the line").
    slots_out[i] = static_cast<uint32_t>(
        ReduceRange(DerivedHash(hp, i + 1), slots_per_block_));
  }
}

uint32_t BlockedCountingBloomFilter::Get(uint64_t key) const {
  uint64_t block;
  uint32_t slots[kMaxHashes];
  Locate(key, &block, slots);
  const size_t base = block * slots_per_block_;
  uint32_t min_count = counters_.max_value();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(base + slots[i]));
  }
  return min_count;
}

uint32_t BlockedCountingBloomFilter::Increment(uint64_t key) {
  uint32_t old_count;
  return IncrementWithOld(key, &old_count);
}

uint32_t BlockedCountingBloomFilter::IncrementWithOld(uint64_t key,
                                                      uint32_t* old_count) {
  uint64_t block;
  uint32_t slots[kMaxHashes];
  Locate(key, &block, slots);
  const size_t base = block * slots_per_block_;
  uint32_t min_count = counters_.max_value();
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    min_count = std::min(min_count, counters_.Get(base + slots[i]));
  }
  // The pre-update estimate is the same min() Get would have returned.
  *old_count = min_count;
  if (min_count >= counters_.max_value()) return min_count;
  for (uint32_t i = 0; i < num_hashes_; ++i) {
    if (counters_.Get(base + slots[i]) == min_count) {
      counters_.Set(base + slots[i], min_count + 1);
    }
  }
  return min_count + 1;
}

void BlockedCountingBloomFilter::CoolByHalving() { counters_.HalveAll(); }

void BlockedCountingBloomFilter::Reset() { counters_.Reset(); }

void BlockedCountingBloomFilter::AppendTouchedLines(
    uint64_t key, std::vector<uint64_t>* lines) const {
  uint64_t block;
  uint32_t slots[kMaxHashes];
  Locate(key, &block, slots);
  // The defining property of the blocked CBF: exactly one line per update.
  lines->push_back(block);
}

}  // namespace hybridtier
